#include "core/recursive_bisection.h"

#include <algorithm>
#include <numeric>

#include "eigen/fiedler.h"
#include "graph/laplacian.h"
#include "graph/point_graph.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "util/check.h"

namespace spectral {

namespace {

// Shared recursion state.
struct Bisector {
  const PointSet* points;  // may be null
  const RecursiveBisectionOptions* options;
  std::vector<int64_t> ranks;  // global point -> rank, filled leaf by leaf
  int64_t next_rank = 0;
  int64_t num_solves = 0;
  int depth_reached = 0;
  Status error;  // first failure, if any

  bool ok() const { return error.ok(); }

  // Appends `verts` in their given order.
  void Emit(std::span<const int64_t> verts) {
    for (int64_t v : verts) {
      ranks[static_cast<size_t>(v)] = next_rank++;
    }
  }

  std::vector<Vector> AxesFor(std::span<const int64_t> verts) const {
    if (points == nullptr || !options->base.canonicalize_with_axes) return {};
    PointSet subset(points->dims());
    for (int64_t v : verts) subset.Add((*points)[v]);
    return subset.CenteredAxisFunctions();
  }

  // Children re-canonicalize the Fiedler sign independently, which would
  // flip segment directions at random and break the concatenated order.
  // Align each child's ascending-value order with the incoming vertex order
  // (`verts` arrives sorted by the parent's values): flip if reversed
  // agreement is stronger.
  static void AlignWithIncomingOrder(std::vector<int64_t>& by_value) {
    const int64_t m = static_cast<int64_t>(by_value.size());
    int64_t forward = 0;
    int64_t backward = 0;
    for (int64_t k = 0; k < m; ++k) {
      forward += k * by_value[static_cast<size_t>(k)];
      backward += k * by_value[static_cast<size_t>(m - 1 - k)];
    }
    if (backward > forward) {
      std::reverse(by_value.begin(), by_value.end());
    }
  }

  // Orders the *connected* subgraph over verts (local ids match verts
  // positions) with one direct Fiedler solve.
  void OrderLeaf(const Graph& graph, std::span<const int64_t> verts) {
    const int64_t m = static_cast<int64_t>(verts.size());
    if (m <= 2) {
      Emit(verts);
      return;
    }
    const auto axes = AxesFor(verts);
    auto fiedler = ComputeFiedler(BuildLaplacian(graph),
                                  options->base.fiedler, axes);
    if (!fiedler.ok()) {
      if (error.ok()) error = fiedler.status();
      Emit(verts);  // keep the permutation valid even on failure
      return;
    }
    num_solves += 1;
    std::vector<int64_t> by_value(static_cast<size_t>(m));
    std::iota(by_value.begin(), by_value.end(), 0);
    std::sort(by_value.begin(), by_value.end(), [&](int64_t a, int64_t b) {
      const double va = fiedler->fiedler[static_cast<size_t>(a)];
      const double vb = fiedler->fiedler[static_cast<size_t>(b)];
      if (va != vb) return va < vb;
      return verts[static_cast<size_t>(a)] < verts[static_cast<size_t>(b)];
    });
    AlignWithIncomingOrder(by_value);
    std::vector<int64_t> ordered(static_cast<size_t>(m));
    for (int64_t i = 0; i < m; ++i) {
      ordered[static_cast<size_t>(i)] =
          verts[static_cast<size_t>(by_value[static_cast<size_t>(i)])];
    }
    Emit(ordered);
  }

  // Orders an arbitrary (possibly disconnected) subgraph.
  void OrderAny(const Graph& graph, std::span<const int64_t> verts,
                int depth);

  // Orders a *connected* subgraph: leaf solve or median-cut recursion.
  void OrderConnected(const Graph& graph, std::span<const int64_t> verts,
                      int depth) {
    depth_reached = std::max(depth_reached, depth);
    const int64_t m = static_cast<int64_t>(verts.size());
    if (m <= std::max<int64_t>(2, options->leaf_size) ||
        depth >= options->max_depth) {
      OrderLeaf(graph, verts);
      return;
    }
    const auto axes = AxesFor(verts);
    auto fiedler = ComputeFiedler(BuildLaplacian(graph),
                                  options->base.fiedler, axes);
    if (!fiedler.ok()) {
      if (error.ok()) error = fiedler.status();
      Emit(verts);
      return;
    }
    num_solves += 1;

    // Median cut: lower half by Fiedler value (ties by global id), with the
    // cut direction aligned to the incoming order.
    std::vector<int64_t> by_value(static_cast<size_t>(m));
    std::iota(by_value.begin(), by_value.end(), 0);
    std::sort(by_value.begin(), by_value.end(), [&](int64_t a, int64_t b) {
      const double va = fiedler->fiedler[static_cast<size_t>(a)];
      const double vb = fiedler->fiedler[static_cast<size_t>(b)];
      if (va != vb) return va < vb;
      return verts[static_cast<size_t>(a)] < verts[static_cast<size_t>(b)];
    });
    AlignWithIncomingOrder(by_value);
    const int64_t half = (m + 1) / 2;
    for (int side = 0; side < 2; ++side) {
      const int64_t begin = side == 0 ? 0 : half;
      const int64_t end = side == 0 ? half : m;
      std::vector<int64_t> side_local(by_value.begin() + begin,
                                      by_value.begin() + end);
      const InducedSubgraph sub = BuildInducedSubgraph(graph, side_local);
      std::vector<int64_t> side_global(side_local.size());
      for (size_t i = 0; i < side_local.size(); ++i) {
        side_global[i] = verts[static_cast<size_t>(side_local[i])];
      }
      OrderAny(sub.graph, side_global, depth + 1);
    }
  }
};

void Bisector::OrderAny(const Graph& graph, std::span<const int64_t> verts,
                        int depth) {
  int64_t num_components = 0;
  const auto comp = ConnectedComponents(graph, &num_components);
  if (num_components <= 1) {
    OrderConnected(graph, verts, depth);
    return;
  }
  // Largest component first, ties by lowest global vertex.
  std::vector<std::vector<int64_t>> members(
      static_cast<size_t>(num_components));
  for (size_t i = 0; i < comp.size(); ++i) {
    members[static_cast<size_t>(comp[i])].push_back(static_cast<int64_t>(i));
  }
  std::vector<int64_t> order(static_cast<size_t>(num_components));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const auto& ma = members[static_cast<size_t>(a)];
    const auto& mb = members[static_cast<size_t>(b)];
    if (ma.size() != mb.size()) return ma.size() > mb.size();
    return verts[static_cast<size_t>(ma[0])] < verts[static_cast<size_t>(mb[0])];
  });
  for (int64_t c : order) {
    const auto& local = members[static_cast<size_t>(c)];
    const InducedSubgraph sub = BuildInducedSubgraph(graph, local);
    std::vector<int64_t> global(local.size());
    for (size_t i = 0; i < local.size(); ++i) {
      global[i] = verts[static_cast<size_t>(local[i])];
    }
    OrderAny(sub.graph, global, depth);
  }
}

}  // namespace

StatusOr<RecursiveBisectionResult> RecursiveSpectralOrderGraph(
    const Graph& graph, const PointSet* points,
    const RecursiveBisectionOptions& options) {
  const int64_t n = graph.num_vertices();
  if (n == 0) return InvalidArgumentError("cannot order an empty graph");
  if (points != nullptr) {
    SPECTRAL_CHECK_EQ(points->size(), n);
  }
  SPECTRAL_CHECK_GE(options.leaf_size, 2);
  SPECTRAL_CHECK_GE(options.max_depth, 1);

  Bisector bisector;
  bisector.points = points;
  bisector.options = &options;
  bisector.ranks.assign(static_cast<size_t>(n), -1);

  std::vector<int64_t> all(static_cast<size_t>(n));
  std::iota(all.begin(), all.end(), 0);
  bisector.OrderAny(graph, all, 0);
  if (!bisector.ok()) return bisector.error;
  SPECTRAL_CHECK_EQ(bisector.next_rank, n);

  auto order = LinearOrder::FromRanks(std::move(bisector.ranks));
  if (!order.ok()) return order.status();
  RecursiveBisectionResult result;
  result.order = std::move(*order);
  result.num_solves = bisector.num_solves;
  result.depth = bisector.depth_reached;
  return result;
}

StatusOr<RecursiveBisectionResult> RecursiveSpectralOrder(
    const PointSet& points, const RecursiveBisectionOptions& options) {
  if (points.empty()) {
    return InvalidArgumentError("cannot order an empty point set");
  }
  auto graph = BuildPointGraph(points, options.base.graph);
  if (!graph.ok()) return graph.status();
  if (options.base.affinity_edges.empty()) {
    return RecursiveSpectralOrderGraph(*graph, &points, options);
  }
  std::vector<GraphEdge> edges;
  graph->ForEachEdge([&](int64_t u, int64_t v, double w) {
    edges.push_back({u, v, w});
  });
  for (const GraphEdge& e : options.base.affinity_edges) {
    if (e.u < 0 || e.u >= points.size() || e.v < 0 || e.v >= points.size() ||
        e.u == e.v || e.weight <= 0.0) {
      return InvalidArgumentError("invalid affinity edge");
    }
    edges.push_back(e);
  }
  const Graph merged = Graph::FromEdges(points.size(), edges);
  return RecursiveSpectralOrderGraph(merged, &points, options);
}

}  // namespace spectral
