#include "core/recursive_bisection.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "eigen/fiedler.h"
#include "graph/laplacian.h"
#include "graph/point_graph.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "util/check.h"

namespace spectral {

namespace {

// Restricts each column of `block` to the entries at `idx` — how a parent
// Fiedler block becomes a child warm start.
VectorBlock RestrictBlock(const VectorBlock& block,
                          std::span<const int64_t> idx) {
  VectorBlock out;
  out.reserve(block.size());
  for (const Vector& v : block) {
    Vector r(idx.size());
    for (size_t i = 0; i < idx.size(); ++i) {
      r[i] = v[static_cast<size_t>(idx[i])];
    }
    out.push_back(std::move(r));
  }
  return out;
}

// Shared recursion state.
struct Bisector {
  const PointSet* points;  // may be null
  const RecursiveBisectionOptions* options;
  std::vector<int64_t> ranks;  // global point -> rank, filled leaf by leaf
  int64_t next_rank = 0;
  int64_t num_solves = 0;
  int64_t warm_solves = 0;
  int64_t matvecs = 0;
  int depth_reached = 0;
  Status error;  // first failure, if any

  bool ok() const { return error.ok(); }

  // One Fiedler solve of the recursion, warm-started from the parent's
  // restricted Fiedler block when available. A warm-started child also
  // drops to warm_dense_threshold: the block path with a good start beats
  // the O(n^3) dense sweep well below the cold dense_threshold. Both
  // solvers land on the same quantized order (the engines are
  // cross-validated at the rank quantizer), so this only moves cost.
  StatusOr<FiedlerResult> Solve(const Graph& graph,
                                std::span<const Vector> axes,
                                const VectorBlock* warm) {
    FiedlerOptions fo = options->base.fiedler;
    // The median cut consumes only the Fiedler vector itself, so never pay
    // the ~num_pairs-proportional block cost for trailing pairs here (the
    // child warm start is that same single vector restricted).
    fo.num_pairs = 1;
    if (options->base.pool != nullptr) fo.matvec_pool = options->base.pool;
    const bool use_warm = options->warm_start_children && warm != nullptr &&
                          !warm->empty();
    if (use_warm) {
      fo.dense_threshold =
          std::min(fo.dense_threshold, options->warm_dense_threshold);
    }
    auto fiedler = ComputeFiedler(BuildLaplacian(graph), fo, axes,
                                  use_warm ? warm : nullptr);
    if (fiedler.ok()) {
      num_solves += 1;
      matvecs += fiedler->matvecs;
      // Count only solves that actually consumed the start (the dense path
      // ignores it; BlockLanczosPath tags its method when warm).
      if (use_warm &&
          fiedler->method_used.find("warm") != std::string::npos) {
        warm_solves += 1;
      }
    }
    return fiedler;
  }

  // Sort key mirroring core/spectral_lpm.cc's rank quantizer: components
  // within rank_quantum_rel * max|component| are ties broken by global id,
  // so dense/block and warm/cold solver noise cannot flip the order.
  int64_t KeyOf(double v, double quantum) const {
    return quantum > 0.0 ? static_cast<int64_t>(std::llround(v / quantum))
                         : 0;
  }

  double QuantumOf(const Vector& values) const {
    return options->base.rank_quantum_rel > 0.0
               ? options->base.rank_quantum_rel * NormInf(values)
               : 0.0;
  }

  // Appends `verts` in their given order.
  void Emit(std::span<const int64_t> verts) {
    for (int64_t v : verts) {
      ranks[static_cast<size_t>(v)] = next_rank++;
    }
  }

  std::vector<Vector> AxesFor(std::span<const int64_t> verts) const {
    if (points == nullptr || !options->base.canonicalize_with_axes) return {};
    PointSet subset(points->dims());
    for (int64_t v : verts) subset.Add((*points)[v]);
    return subset.CenteredAxisFunctions();
  }

  // Children re-canonicalize the Fiedler sign independently, which would
  // flip segment directions at random and break the concatenated order.
  // Align each child's ascending-value order with the incoming vertex order
  // (`verts` arrives sorted by the parent's values): flip if reversed
  // agreement is stronger.
  static void AlignWithIncomingOrder(std::vector<int64_t>& by_value) {
    const int64_t m = static_cast<int64_t>(by_value.size());
    int64_t forward = 0;
    int64_t backward = 0;
    for (int64_t k = 0; k < m; ++k) {
      forward += k * by_value[static_cast<size_t>(k)];
      backward += k * by_value[static_cast<size_t>(m - 1 - k)];
    }
    if (backward > forward) {
      std::reverse(by_value.begin(), by_value.end());
    }
  }

  // Orders the *connected* subgraph over verts (local ids match verts
  // positions) with one direct Fiedler solve.
  void OrderLeaf(const Graph& graph, std::span<const int64_t> verts,
                 const VectorBlock* warm) {
    const int64_t m = static_cast<int64_t>(verts.size());
    if (m <= 2) {
      Emit(verts);
      return;
    }
    const auto axes = AxesFor(verts);
    auto fiedler = Solve(graph, axes, warm);
    if (!fiedler.ok()) {
      if (error.ok()) error = fiedler.status();
      Emit(verts);  // keep the permutation valid even on failure
      return;
    }
    const double quantum = QuantumOf(fiedler->fiedler);
    std::vector<int64_t> by_value(static_cast<size_t>(m));
    std::iota(by_value.begin(), by_value.end(), 0);
    std::sort(by_value.begin(), by_value.end(), [&](int64_t a, int64_t b) {
      const double va = fiedler->fiedler[static_cast<size_t>(a)];
      const double vb = fiedler->fiedler[static_cast<size_t>(b)];
      const int64_t ka = KeyOf(va, quantum);
      const int64_t kb = KeyOf(vb, quantum);
      if (ka != kb) return ka < kb;
      if (quantum == 0.0 && va != vb) return va < vb;
      return verts[static_cast<size_t>(a)] < verts[static_cast<size_t>(b)];
    });
    AlignWithIncomingOrder(by_value);
    std::vector<int64_t> ordered(static_cast<size_t>(m));
    for (int64_t i = 0; i < m; ++i) {
      ordered[static_cast<size_t>(i)] =
          verts[static_cast<size_t>(by_value[static_cast<size_t>(i)])];
    }
    Emit(ordered);
  }

  // Orders an arbitrary (possibly disconnected) subgraph.
  void OrderAny(const Graph& graph, std::span<const int64_t> verts, int depth,
                const VectorBlock* warm);

  // Orders a *connected* subgraph: leaf solve or median-cut recursion.
  void OrderConnected(const Graph& graph, std::span<const int64_t> verts,
                      int depth, const VectorBlock* warm) {
    depth_reached = std::max(depth_reached, depth);
    const int64_t m = static_cast<int64_t>(verts.size());
    if (m <= std::max<int64_t>(2, options->leaf_size) ||
        depth >= options->max_depth) {
      OrderLeaf(graph, verts, warm);
      return;
    }
    const auto axes = AxesFor(verts);
    auto fiedler = Solve(graph, axes, warm);
    if (!fiedler.ok()) {
      if (error.ok()) error = fiedler.status();
      Emit(verts);
      return;
    }

    // Median cut: lower half by quantized Fiedler value (ties by global
    // id), with the cut direction aligned to the incoming order.
    const double quantum = QuantumOf(fiedler->fiedler);
    std::vector<int64_t> by_value(static_cast<size_t>(m));
    std::iota(by_value.begin(), by_value.end(), 0);
    std::sort(by_value.begin(), by_value.end(), [&](int64_t a, int64_t b) {
      const double va = fiedler->fiedler[static_cast<size_t>(a)];
      const double vb = fiedler->fiedler[static_cast<size_t>(b)];
      const int64_t ka = KeyOf(va, quantum);
      const int64_t kb = KeyOf(vb, quantum);
      if (ka != kb) return ka < kb;
      if (quantum == 0.0 && va != vb) return va < vb;
      return verts[static_cast<size_t>(a)] < verts[static_cast<size_t>(b)];
    });
    AlignWithIncomingOrder(by_value);

    // This solve's eigenpairs, restricted to a child's vertices, seed the
    // child's solve (the warm-start hook in eigen/fiedler.h).
    VectorBlock parent_block;
    if (options->warm_start_children) {
      parent_block.reserve(fiedler->pairs.size());
      for (const LaplacianEigenPair& pair : fiedler->pairs) {
        parent_block.push_back(pair.eigenvector);
      }
    }

    const int64_t half = (m + 1) / 2;
    for (int side = 0; side < 2; ++side) {
      const int64_t begin = side == 0 ? 0 : half;
      const int64_t end = side == 0 ? half : m;
      std::vector<int64_t> side_local(by_value.begin() + begin,
                                      by_value.begin() + end);
      const InducedSubgraph sub = BuildInducedSubgraph(graph, side_local);
      std::vector<int64_t> side_global(side_local.size());
      for (size_t i = 0; i < side_local.size(); ++i) {
        side_global[i] = verts[static_cast<size_t>(side_local[i])];
      }
      VectorBlock child_warm;
      if (!parent_block.empty()) {
        child_warm = RestrictBlock(parent_block, side_local);
      }
      OrderAny(sub.graph, side_global, depth + 1,
               child_warm.empty() ? nullptr : &child_warm);
    }
  }
};

void Bisector::OrderAny(const Graph& graph, std::span<const int64_t> verts,
                        int depth, const VectorBlock* warm) {
  int64_t num_components = 0;
  const auto comp = ConnectedComponents(graph, &num_components);
  if (num_components <= 1) {
    OrderConnected(graph, verts, depth, warm);
    return;
  }
  // Largest component first, ties by lowest global vertex.
  std::vector<std::vector<int64_t>> members(
      static_cast<size_t>(num_components));
  for (size_t i = 0; i < comp.size(); ++i) {
    members[static_cast<size_t>(comp[i])].push_back(static_cast<int64_t>(i));
  }
  std::vector<int64_t> order(static_cast<size_t>(num_components));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const auto& ma = members[static_cast<size_t>(a)];
    const auto& mb = members[static_cast<size_t>(b)];
    if (ma.size() != mb.size()) return ma.size() > mb.size();
    return verts[static_cast<size_t>(ma[0])] < verts[static_cast<size_t>(mb[0])];
  });
  for (int64_t c : order) {
    const auto& local = members[static_cast<size_t>(c)];
    const InducedSubgraph sub = BuildInducedSubgraph(graph, local);
    std::vector<int64_t> global(local.size());
    for (size_t i = 0; i < local.size(); ++i) {
      global[i] = verts[static_cast<size_t>(local[i])];
    }
    VectorBlock comp_warm;
    if (warm != nullptr && !warm->empty()) {
      comp_warm = RestrictBlock(*warm, local);
    }
    OrderAny(sub.graph, global, depth,
             comp_warm.empty() ? nullptr : &comp_warm);
  }
}

}  // namespace

StatusOr<RecursiveBisectionResult> RecursiveSpectralOrderGraph(
    const Graph& graph, const PointSet* points,
    const RecursiveBisectionOptions& options) {
  const int64_t n = graph.num_vertices();
  if (n == 0) return InvalidArgumentError("cannot order an empty graph");
  if (points != nullptr) {
    SPECTRAL_CHECK_EQ(points->size(), n);
  }
  SPECTRAL_CHECK_GE(options.leaf_size, 2);
  SPECTRAL_CHECK_GE(options.max_depth, 1);

  Bisector bisector;
  bisector.points = points;
  bisector.options = &options;
  bisector.ranks.assign(static_cast<size_t>(n), -1);

  std::vector<int64_t> all(static_cast<size_t>(n));
  std::iota(all.begin(), all.end(), 0);
  bisector.OrderAny(graph, all, 0, nullptr);
  if (!bisector.ok()) return bisector.error;
  SPECTRAL_CHECK_EQ(bisector.next_rank, n);

  auto order = LinearOrder::FromRanks(std::move(bisector.ranks));
  if (!order.ok()) return order.status();
  RecursiveBisectionResult result;
  result.order = std::move(*order);
  result.num_solves = bisector.num_solves;
  result.warm_solves = bisector.warm_solves;
  result.matvecs = bisector.matvecs;
  result.depth = bisector.depth_reached;
  return result;
}

StatusOr<RecursiveBisectionResult> RecursiveSpectralOrder(
    const PointSet& points, const RecursiveBisectionOptions& options) {
  if (points.empty()) {
    return InvalidArgumentError("cannot order an empty point set");
  }
  auto graph = BuildPointGraph(points, options.base.graph);
  if (!graph.ok()) return graph.status();
  if (options.base.affinity_edges.empty()) {
    return RecursiveSpectralOrderGraph(*graph, &points, options);
  }
  std::vector<GraphEdge> edges;
  graph->ForEachEdge([&](int64_t u, int64_t v, double w) {
    edges.push_back({u, v, w});
  });
  for (const GraphEdge& e : options.base.affinity_edges) {
    if (e.u < 0 || e.u >= points.size() || e.v < 0 || e.v >= points.size() ||
        e.u == e.v || e.weight <= 0.0) {
      return InvalidArgumentError("invalid affinity edge");
    }
    edges.push_back(e);
  }
  const Graph merged = Graph::FromEdges(points.size(), edges);
  return RecursiveSpectralOrderGraph(merged, &points, options);
}

}  // namespace spectral
