// Recursive spectral bisection ordering — the median-cut method whose
// optimality the paper cites (Chan, Ciarlet & Szeto, SIAM J. Sci. Comp.
// 1997, reference [1]). Instead of sorting by one global Fiedler vector,
// the point set is split at the Fiedler median, each half is ordered
// recursively, and the halves are concatenated. This is the classic
// alternative formulation of a spectral order; the ablation bench compares
// it with the direct Spectral LPM order.

#ifndef SPECTRAL_LPM_CORE_RECURSIVE_BISECTION_H_
#define SPECTRAL_LPM_CORE_RECURSIVE_BISECTION_H_

#include "core/linear_order.h"
#include "core/spectral_lpm.h"
#include "graph/graph.h"
#include "space/point_set.h"
#include "util/status.h"

namespace spectral {

/// Options for recursive spectral bisection.
struct RecursiveBisectionOptions {
  /// Subproblems at or below this size are ordered by one direct Fiedler
  /// solve (or trivially for size <= 2).
  int64_t leaf_size = 8;
  /// Hard cap on the recursion depth (safety valve; 64 >= log2 of any n).
  int max_depth = 64;
  /// Feed each child solve the parent's Fiedler block restricted to the
  /// child's vertices through the eigensolver's warm-start hook. The
  /// restricted parent vector is an excellent approximation of the child's
  /// own Fiedler vector (the child is half the parent's geometry), so warm
  /// solves converge in a fraction of the iterations; a stale start only
  /// costs iterations, never changes the converged order (the solver's
  /// warm == cold contract, regression-tested).
  bool warm_start_children = true;
  /// Warm-started children at or above this size take the block path even
  /// when the base dense_threshold would pick dense Jacobi: with a good
  /// start the block solve is far cheaper than the O(n^3) dense sweep that
  /// otherwise dominates the whole recursion on mid-size children.
  int64_t warm_dense_threshold = 32;
  /// Graph construction and eigensolver configuration (affinity edges are
  /// honored on the top-level graph).
  SpectralLpmOptions base;
};

/// Result of a recursive bisection ordering.
struct RecursiveBisectionResult {
  LinearOrder order;
  /// Number of Fiedler solves performed across the recursion.
  int64_t num_solves = 0;
  /// How many of those received a parent warm start.
  int64_t warm_solves = 0;
  /// Eigensolver matvecs summed over all solves in the recursion.
  int64_t matvecs = 0;
  /// Deepest recursion level reached (0 = no split).
  int depth = 0;
};

/// Orders `points` by recursive spectral (median-cut) bisection. Handles
/// disconnected graphs like SpectralMapper: components are ordered largest
/// first and concatenated.
StatusOr<RecursiveBisectionResult> RecursiveSpectralOrder(
    const PointSet& points, const RecursiveBisectionOptions& options = {});

/// Graph-input variant (weights encode priority, as in section 4).
/// `points` may be null; it is only used for degeneracy canonicalization.
StatusOr<RecursiveBisectionResult> RecursiveSpectralOrderGraph(
    const Graph& graph, const PointSet* points,
    const RecursiveBisectionOptions& options = {});

}  // namespace spectral

#endif  // SPECTRAL_LPM_CORE_RECURSIVE_BISECTION_H_
