#include "core/linear_order.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.h"

namespace spectral {

void LinearOrder::BuildInverse() {
  rank_to_point_.assign(point_to_rank_.size(), -1);
  for (size_t i = 0; i < point_to_rank_.size(); ++i) {
    rank_to_point_[static_cast<size_t>(point_to_rank_[i])] =
        static_cast<int64_t>(i);
  }
}

StatusOr<LinearOrder> LinearOrder::FromRanks(
    std::vector<int64_t> point_to_rank) {
  const int64_t n = static_cast<int64_t>(point_to_rank.size());
  std::vector<bool> seen(static_cast<size_t>(n), false);
  for (int64_t r : point_to_rank) {
    if (r < 0 || r >= n || seen[static_cast<size_t>(r)]) {
      return InvalidArgumentError("ranks are not a permutation of [0, n)");
    }
    seen[static_cast<size_t>(r)] = true;
  }
  LinearOrder order;
  order.point_to_rank_ = std::move(point_to_rank);
  order.BuildInverse();
  return order;
}

namespace {

template <typename T>
std::vector<int64_t> ArgsortToRanks(std::span<const T> values) {
  const int64_t n = static_cast<int64_t>(values.size());
  std::vector<int64_t> by_value(static_cast<size_t>(n));
  std::iota(by_value.begin(), by_value.end(), 0);
  std::sort(by_value.begin(), by_value.end(), [&](int64_t a, int64_t b) {
    const T va = values[static_cast<size_t>(a)];
    const T vb = values[static_cast<size_t>(b)];
    return va != vb ? va < vb : a < b;
  });
  std::vector<int64_t> ranks(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    ranks[static_cast<size_t>(by_value[static_cast<size_t>(r)])] = r;
  }
  return ranks;
}

}  // namespace

LinearOrder LinearOrder::FromValues(std::span<const double> values) {
  LinearOrder order;
  order.point_to_rank_ = ArgsortToRanks(values);
  order.BuildInverse();
  return order;
}

LinearOrder LinearOrder::FromKeys(std::span<const uint64_t> keys) {
  LinearOrder order;
  order.point_to_rank_ = ArgsortToRanks(keys);
  order.BuildInverse();
  return order;
}

LinearOrder LinearOrder::Identity(int64_t n) {
  SPECTRAL_CHECK_GE(n, 0);
  LinearOrder order;
  order.point_to_rank_.resize(static_cast<size_t>(n));
  std::iota(order.point_to_rank_.begin(), order.point_to_rank_.end(), 0);
  order.BuildInverse();
  return order;
}

int64_t LinearOrder::RankOf(int64_t i) const {
  SPECTRAL_DCHECK_GE(i, 0);
  SPECTRAL_DCHECK_LT(i, size());
  return point_to_rank_[static_cast<size_t>(i)];
}

int64_t LinearOrder::PointAtRank(int64_t r) const {
  SPECTRAL_DCHECK_GE(r, 0);
  SPECTRAL_DCHECK_LT(r, size());
  return rank_to_point_[static_cast<size_t>(r)];
}

LinearOrder LinearOrder::Reversed() const {
  LinearOrder order;
  order.point_to_rank_.resize(point_to_rank_.size());
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) {
    order.point_to_rank_[static_cast<size_t>(i)] =
        n - 1 - point_to_rank_[static_cast<size_t>(i)];
  }
  order.BuildInverse();
  return order;
}

double LinearOrder::SquaredArrangementCost(const Graph& g) const {
  SPECTRAL_CHECK_EQ(g.num_vertices(), size());
  double acc = 0.0;
  g.ForEachEdge([&](int64_t u, int64_t v, double w) {
    const double diff = static_cast<double>(RankOf(u) - RankOf(v));
    acc += w * diff * diff;
  });
  return acc;
}

double LinearOrder::LinearArrangementCost(const Graph& g) const {
  SPECTRAL_CHECK_EQ(g.num_vertices(), size());
  double acc = 0.0;
  g.ForEachEdge([&](int64_t u, int64_t v, double w) {
    acc += w * std::fabs(static_cast<double>(RankOf(u) - RankOf(v)));
  });
  return acc;
}

std::string LinearOrder::ToGridString(const PointSet& points) const {
  SPECTRAL_CHECK_EQ(points.dims(), 2);
  SPECTRAL_CHECK_EQ(points.size(), size());
  std::vector<Coord> lo, hi;
  points.Bounds(&lo, &hi);
  const int64_t rows = hi[0] - lo[0] + 1;
  const int64_t cols = hi[1] - lo[1] + 1;
  // cell text grid initialized to dots
  std::vector<std::vector<std::string>> cells(
      static_cast<size_t>(rows),
      std::vector<std::string>(static_cast<size_t>(cols), "."));
  size_t width = 1;
  for (int64_t i = 0; i < points.size(); ++i) {
    const auto p = points[i];
    std::string text = std::to_string(RankOf(i));
    width = std::max(width, text.size());
    cells[static_cast<size_t>(p[0] - lo[0])][static_cast<size_t>(p[1] - lo[1])] =
        std::move(text);
  }
  std::ostringstream os;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      const std::string& text = cells[static_cast<size_t>(r)][static_cast<size_t>(c)];
      os << std::string(width - text.size(), ' ') << text;
      if (c + 1 < cols) os << ' ';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace spectral
