#include "core/serialization.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace spectral {

namespace {
constexpr char kOrderMagic[] = "spectral-lpm-order v1";
constexpr char kPointsMagic[] = "spectral-lpm-points v1";
}  // namespace

Status WriteLinearOrder(const LinearOrder& order, std::ostream& out) {
  out << kOrderMagic << '\n' << order.size() << '\n';
  for (int64_t i = 0; i < order.size(); ++i) {
    out << order.RankOf(i) << '\n';
  }
  if (!out.good()) return InternalError("write failed");
  return OkStatus();
}

StatusOr<LinearOrder> ReadLinearOrder(std::istream& in) {
  std::string magic;
  std::getline(in, magic);
  if (magic != kOrderMagic) {
    return InvalidArgumentError("bad magic: expected '" +
                                std::string(kOrderMagic) + "'");
  }
  int64_t n = -1;
  in >> n;
  if (!in.good() || n < 0) return InvalidArgumentError("bad size");
  std::vector<int64_t> ranks(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    if (!(in >> ranks[static_cast<size_t>(i)])) {
      return InvalidArgumentError("truncated rank list");
    }
  }
  return LinearOrder::FromRanks(std::move(ranks));
}

Status WritePointSet(const PointSet& points, std::ostream& out) {
  out << kPointsMagic << '\n'
      << points.size() << ' ' << points.dims() << '\n';
  for (int64_t i = 0; i < points.size(); ++i) {
    const auto p = points[i];
    for (int a = 0; a < points.dims(); ++a) {
      out << (a > 0 ? " " : "") << p[static_cast<size_t>(a)];
    }
    out << '\n';
  }
  if (!out.good()) return InternalError("write failed");
  return OkStatus();
}

StatusOr<PointSet> ReadPointSet(std::istream& in) {
  std::string magic;
  std::getline(in, magic);
  if (magic != kPointsMagic) {
    return InvalidArgumentError("bad magic: expected '" +
                                std::string(kPointsMagic) + "'");
  }
  int64_t n = -1;
  int dims = -1;
  in >> n >> dims;
  if (!in.good() || n < 0 || dims < 1) {
    return InvalidArgumentError("bad point set header");
  }
  PointSet points(dims);
  std::vector<Coord> p(static_cast<size_t>(dims));
  for (int64_t i = 0; i < n; ++i) {
    for (int a = 0; a < dims; ++a) {
      int64_t c;
      if (!(in >> c)) return InvalidArgumentError("truncated point list");
      p[static_cast<size_t>(a)] = static_cast<Coord>(c);
    }
    points.Add(p);
  }
  return points;
}

Status SaveLinearOrderToFile(const LinearOrder& order,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return InternalError("cannot open " + path);
  return WriteLinearOrder(order, out);
}

StatusOr<LinearOrder> LoadLinearOrderFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return NotFoundError("cannot open " + path);
  return ReadLinearOrder(in);
}

Status SavePointSetToFile(const PointSet& points, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return InternalError("cannot open " + path);
  return WritePointSet(points, out);
}

StatusOr<PointSet> LoadPointSetFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return NotFoundError("cannot open " + path);
  return ReadPointSet(in);
}

}  // namespace spectral
