#include "core/serialization.h"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace spectral {

namespace {
constexpr char kOrderMagic[] = "spectral-lpm-order v1";
constexpr char kPointsMagic[] = "spectral-lpm-points v1";
constexpr char kCacheMagic[] = "spectral-lpm-cache v1";

// Reads one line and strips the expected "<keyword> " prefix; a bare
// keyword line (empty payload) is also accepted. Fails on EOF or mismatch.
Status ConsumeTaggedLine(std::istream& in, std::string_view keyword,
                         std::string* payload) {
  std::string line;
  if (!std::getline(in, line)) {
    return InvalidArgumentError("truncated snapshot: expected '" +
                                std::string(keyword) + "' line");
  }
  if (line == keyword) {
    payload->clear();
    return OkStatus();
  }
  const std::string prefix = std::string(keyword) + " ";
  if (line.rfind(prefix, 0) != 0) {
    return InvalidArgumentError("corrupt snapshot: expected '" +
                                std::string(keyword) + " ...', got '" + line +
                                "'");
  }
  *payload = line.substr(prefix.size());
  return OkStatus();
}

// Parses exactly 16 lowercase/uppercase hex digits.
bool ParseHex64(std::string_view hex, uint64_t* out) {
  if (hex.size() != 16) return false;
  uint64_t value = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}
}  // namespace

Status WriteLinearOrder(const LinearOrder& order, std::ostream& out) {
  out << kOrderMagic << '\n' << order.size() << '\n';
  for (int64_t i = 0; i < order.size(); ++i) {
    out << order.RankOf(i) << '\n';
  }
  if (!out.good()) return InternalError("write failed");
  return OkStatus();
}

StatusOr<LinearOrder> ReadLinearOrder(std::istream& in) {
  std::string magic;
  std::getline(in, magic);
  if (magic != kOrderMagic) {
    return InvalidArgumentError("bad magic: expected '" +
                                std::string(kOrderMagic) + "'");
  }
  int64_t n = -1;
  in >> n;
  if (!in.good() || n < 0) return InvalidArgumentError("bad size");
  std::vector<int64_t> ranks(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    if (!(in >> ranks[static_cast<size_t>(i)])) {
      return InvalidArgumentError("truncated rank list");
    }
  }
  return LinearOrder::FromRanks(std::move(ranks));
}

Status WritePointSet(const PointSet& points, std::ostream& out) {
  out << kPointsMagic << '\n'
      << points.size() << ' ' << points.dims() << '\n';
  for (int64_t i = 0; i < points.size(); ++i) {
    const auto p = points[i];
    for (int a = 0; a < points.dims(); ++a) {
      out << (a > 0 ? " " : "") << p[static_cast<size_t>(a)];
    }
    out << '\n';
  }
  if (!out.good()) return InternalError("write failed");
  return OkStatus();
}

StatusOr<PointSet> ReadPointSet(std::istream& in) {
  std::string magic;
  std::getline(in, magic);
  if (magic != kPointsMagic) {
    return InvalidArgumentError("bad magic: expected '" +
                                std::string(kPointsMagic) + "'");
  }
  int64_t n = -1;
  int dims = -1;
  in >> n >> dims;
  if (!in.good() || n < 0 || dims < 1) {
    return InvalidArgumentError("bad point set header");
  }
  PointSet points(dims);
  std::vector<Coord> p(static_cast<size_t>(dims));
  for (int64_t i = 0; i < n; ++i) {
    for (int a = 0; a < dims; ++a) {
      int64_t c;
      if (!(in >> c)) return InvalidArgumentError("truncated point list");
      p[static_cast<size_t>(a)] = static_cast<Coord>(c);
    }
    points.Add(p);
  }
  return points;
}

Status WriteOrderCacheSnapshot(std::span<const OrderCacheEntry> entries,
                               std::ostream& out) {
  out << kCacheMagic << '\n' << entries.size() << '\n';
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const OrderCacheEntry& entry : entries) {
    const OrderingResult& r = entry.result;
    out << "entry " << entry.fingerprint.ToHex() << '\n';
    out << "method " << r.method << '\n';
    out << "detail " << r.detail << '\n';
    out << "metrics " << r.lambda2 << ' ' << r.num_components << ' '
        << r.matvecs << ' ' << r.restarts << ' ' << r.spmm_calls << ' '
        << r.reorth_panels << ' ' << r.num_solves << ' ' << r.depth << ' '
        << r.grid_side << ' ' << r.grid_cells << '\n';
    out << "order " << r.order.size();
    for (int64_t i = 0; i < r.order.size(); ++i) out << ' ' << r.order.RankOf(i);
    out << '\n';
    out << "embedding " << r.embedding.size();
    for (double e : r.embedding) out << ' ' << e;
    out << '\n';
  }
  if (!out.good()) return InternalError("write failed");
  return OkStatus();
}

StatusOr<std::vector<OrderCacheEntry>> ReadOrderCacheSnapshot(
    std::istream& in) {
  std::string magic;
  std::getline(in, magic);
  if (magic != kCacheMagic) {
    return InvalidArgumentError("bad magic: expected '" +
                                std::string(kCacheMagic) + "', got '" + magic +
                                "'");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return InvalidArgumentError("truncated snapshot: missing entry count");
  }
  char* end = nullptr;
  const long long declared = std::strtoll(line.c_str(), &end, 10);
  if (end == line.c_str() || *end != '\0' || declared < 0) {
    return InvalidArgumentError("bad entry count '" + line + "'");
  }

  std::vector<OrderCacheEntry> entries;
  entries.reserve(static_cast<size_t>(declared));
  std::string payload;
  for (long long i = 0; i < declared; ++i) {
    OrderCacheEntry entry;
    OrderingResult& r = entry.result;

    if (Status s = ConsumeTaggedLine(in, "entry", &payload); !s.ok()) return s;
    if (payload.size() != 32 ||
        !ParseHex64(std::string_view(payload).substr(0, 16),
                    &entry.fingerprint.hi) ||
        !ParseHex64(std::string_view(payload).substr(16, 16),
                    &entry.fingerprint.lo)) {
      return InvalidArgumentError("bad fingerprint '" + payload + "'");
    }
    if (Status s = ConsumeTaggedLine(in, "method", &r.method); !s.ok()) {
      return s;
    }
    if (Status s = ConsumeTaggedLine(in, "detail", &r.detail); !s.ok()) {
      return s;
    }

    if (Status s = ConsumeTaggedLine(in, "metrics", &payload); !s.ok()) {
      return s;
    }
    {
      std::istringstream metrics(payload);
      int64_t grid_side = 0;
      metrics >> r.lambda2 >> r.num_components >> r.matvecs >> r.restarts >>
          r.spmm_calls >> r.reorth_panels >> r.num_solves >> r.depth >>
          grid_side >> r.grid_cells;
      if (metrics.fail()) {
        return InvalidArgumentError("corrupt metrics line '" + payload + "'");
      }
      r.grid_side = static_cast<Coord>(grid_side);
    }

    if (Status s = ConsumeTaggedLine(in, "order", &payload); !s.ok()) return s;
    {
      std::istringstream order_in(payload);
      int64_t n = -1;
      order_in >> n;
      if (order_in.fail() || n < 0) {
        return InvalidArgumentError("bad order size in snapshot");
      }
      std::vector<int64_t> ranks(static_cast<size_t>(n));
      for (int64_t k = 0; k < n; ++k) {
        if (!(order_in >> ranks[static_cast<size_t>(k)])) {
          return InvalidArgumentError("truncated order rank list");
        }
      }
      auto order = LinearOrder::FromRanks(std::move(ranks));
      if (!order.ok()) return order.status();
      r.order = *std::move(order);
    }

    if (Status s = ConsumeTaggedLine(in, "embedding", &payload); !s.ok()) {
      return s;
    }
    {
      std::istringstream embedding_in(payload);
      int64_t m = -1;
      embedding_in >> m;
      if (embedding_in.fail() || m < 0) {
        return InvalidArgumentError("bad embedding size in snapshot");
      }
      r.embedding.resize(static_cast<size_t>(m));
      for (int64_t k = 0; k < m; ++k) {
        if (!(embedding_in >> r.embedding[static_cast<size_t>(k)])) {
          return InvalidArgumentError("truncated embedding list");
        }
      }
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

Status SaveOrderCacheSnapshotToFile(std::span<const OrderCacheEntry> entries,
                                    const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return InternalError("cannot open " + path);
  return WriteOrderCacheSnapshot(entries, out);
}

StatusOr<std::vector<OrderCacheEntry>> LoadOrderCacheSnapshotFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return NotFoundError("cannot open " + path);
  return ReadOrderCacheSnapshot(in);
}

Status SaveLinearOrderToFile(const LinearOrder& order,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return InternalError("cannot open " + path);
  return WriteLinearOrder(order, out);
}

StatusOr<LinearOrder> LoadLinearOrderFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return NotFoundError("cannot open " + path);
  return ReadLinearOrder(in);
}

Status SavePointSetToFile(const PointSet& points, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return InternalError("cannot open " + path);
  return WritePointSet(points, out);
}

StatusOr<PointSet> LoadPointSetFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return NotFoundError("cannot open " + path);
  return ReadPointSet(in);
}

}  // namespace spectral
