#include "core/serialization.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/fault.h"
#include "util/hash.h"

namespace spectral {

namespace {
constexpr char kOrderMagic[] = "spectral-lpm-order v1";
constexpr char kPointsMagic[] = "spectral-lpm-points v1";
constexpr char kCacheMagic[] = "spectral-lpm-cache v2";

// Reads one line and strips the expected "<keyword> " prefix; a bare
// keyword line (empty payload) is also accepted. Fails on EOF or mismatch.
Status ConsumeTaggedLine(std::istream& in, std::string_view keyword,
                         std::string* payload) {
  std::string line;
  if (!std::getline(in, line)) {
    return InvalidArgumentError("truncated snapshot: expected '" +
                                std::string(keyword) + "' line");
  }
  if (line == keyword) {
    payload->clear();
    return OkStatus();
  }
  const std::string prefix = std::string(keyword) + " ";
  if (line.rfind(prefix, 0) != 0) {
    return InvalidArgumentError("corrupt snapshot: expected '" +
                                std::string(keyword) + " ...', got '" + line +
                                "'");
  }
  *payload = line.substr(prefix.size());
  return OkStatus();
}

// Parses exactly 16 lowercase/uppercase hex digits.
bool ParseHex64(std::string_view hex, uint64_t* out) {
  if (hex.size() != 16) return false;
  uint64_t value = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}

// 16-digit lowercase hex of `value` (the checksum trailer's payload).
std::string Hex64(uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

// Content hash of a snapshot body (everything before the checksum line).
uint64_t SnapshotChecksum(std::string_view body) {
  return Hasher().MixString(body).Finish().lo;
}
}  // namespace

Status WriteLinearOrder(const LinearOrder& order, std::ostream& out) {
  out << kOrderMagic << '\n' << order.size() << '\n';
  for (int64_t i = 0; i < order.size(); ++i) {
    out << order.RankOf(i) << '\n';
  }
  if (!out.good()) return InternalError("write failed");
  return OkStatus();
}

StatusOr<LinearOrder> ReadLinearOrder(std::istream& in) {
  std::string magic;
  std::getline(in, magic);
  if (magic != kOrderMagic) {
    return InvalidArgumentError("bad magic: expected '" +
                                std::string(kOrderMagic) + "'");
  }
  int64_t n = -1;
  in >> n;
  if (!in.good() || n < 0) return InvalidArgumentError("bad size");
  std::vector<int64_t> ranks(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    if (!(in >> ranks[static_cast<size_t>(i)])) {
      return InvalidArgumentError("truncated rank list");
    }
  }
  return LinearOrder::FromRanks(std::move(ranks));
}

Status WritePointSet(const PointSet& points, std::ostream& out) {
  out << kPointsMagic << '\n'
      << points.size() << ' ' << points.dims() << '\n';
  for (int64_t i = 0; i < points.size(); ++i) {
    const auto p = points[i];
    for (int a = 0; a < points.dims(); ++a) {
      out << (a > 0 ? " " : "") << p[static_cast<size_t>(a)];
    }
    out << '\n';
  }
  if (!out.good()) return InternalError("write failed");
  return OkStatus();
}

StatusOr<PointSet> ReadPointSet(std::istream& in) {
  std::string magic;
  std::getline(in, magic);
  if (magic != kPointsMagic) {
    return InvalidArgumentError("bad magic: expected '" +
                                std::string(kPointsMagic) + "'");
  }
  int64_t n = -1;
  int dims = -1;
  in >> n >> dims;
  if (!in.good() || n < 0 || dims < 1) {
    return InvalidArgumentError("bad point set header");
  }
  PointSet points(dims);
  std::vector<Coord> p(static_cast<size_t>(dims));
  for (int64_t i = 0; i < n; ++i) {
    for (int a = 0; a < dims; ++a) {
      int64_t c;
      if (!(in >> c)) return InvalidArgumentError("truncated point list");
      p[static_cast<size_t>(a)] = static_cast<Coord>(c);
    }
    points.Add(p);
  }
  return points;
}

std::string WithSnapshotChecksum(std::string body) {
  body += "checksum " + Hex64(SnapshotChecksum(body)) + "\n";
  return body;
}

Status WriteOrderCacheSnapshot(std::span<const OrderCacheEntry> entries,
                               std::ostream& out) {
  // The body is rendered in memory first so the checksum trailer can cover
  // it; snapshots are bounded by the cache capacity, so this stays small.
  std::ostringstream body;
  body << kCacheMagic << '\n' << entries.size() << '\n';
  body << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const OrderCacheEntry& entry : entries) {
    const OrderingResult& r = entry.result;
    body << "entry " << entry.fingerprint.ToHex() << '\n';
    body << "method " << r.method << '\n';
    body << "detail " << r.detail << '\n';
    body << "metrics " << r.lambda2 << ' ' << r.num_components << ' '
         << r.matvecs << ' ' << r.restarts << ' ' << r.spmm_calls << ' '
         << r.reorth_panels << ' ' << r.num_solves << ' ' << r.depth << ' '
         << r.grid_side << ' ' << r.grid_cells << ' '
         << (r.converged ? 1 : 0) << '\n';
    body << "order " << r.order.size();
    for (int64_t i = 0; i < r.order.size(); ++i) {
      body << ' ' << r.order.RankOf(i);
    }
    body << '\n';
    body << "embedding " << r.embedding.size();
    for (double e : r.embedding) body << ' ' << e;
    body << '\n';
  }
  out << WithSnapshotChecksum(std::move(body).str());
  if (!out.good()) return InternalError("write failed");
  return OkStatus();
}

StatusOr<std::vector<OrderCacheEntry>> ReadOrderCacheSnapshot(
    std::istream& in) {
  // Slurp the whole stream: the checksum trailer covers every body byte, so
  // verification needs the text in hand before any field is parsed.
  std::ostringstream slurp;
  slurp << in.rdbuf();
  const std::string text = std::move(slurp).str();

  // The magic line is checked before the checksum so a wrong-version file
  // gets a version error, not a checksum one.
  const size_t magic_end = text.find('\n');
  if (magic_end == std::string::npos ||
      std::string_view(text).substr(0, magic_end) != kCacheMagic) {
    return InvalidArgumentError(
        "bad magic: expected '" + std::string(kCacheMagic) + "', got '" +
        text.substr(0, std::min(magic_end, text.find('\0'))) + "'");
  }

  // The trailer must be the final line: "checksum <16 hex>".
  const size_t trailer = text.rfind("checksum ");
  uint64_t declared_sum = 0;
  if (trailer == std::string::npos ||
      (trailer != 0 && text[trailer - 1] != '\n')) {
    return InvalidArgumentError("truncated snapshot: missing checksum trailer");
  }
  {
    std::string_view rest = std::string_view(text).substr(trailer + 9);
    if (!rest.empty() && rest.back() == '\n') rest.remove_suffix(1);
    if (!ParseHex64(rest, &declared_sum)) {
      return InvalidArgumentError("bad checksum trailer");
    }
  }
  const std::string_view body = std::string_view(text).substr(0, trailer);
  const uint64_t actual_sum = SnapshotChecksum(body);
  if (actual_sum != declared_sum) {
    return InvalidArgumentError("snapshot checksum mismatch: trailer says " +
                                Hex64(declared_sum) + ", body hashes to " +
                                Hex64(actual_sum));
  }

  std::istringstream body_in{std::string(body)};
  std::string line;
  std::getline(body_in, line);  // the magic, already checked
  if (!std::getline(body_in, line)) {
    return InvalidArgumentError("truncated snapshot: missing entry count");
  }
  char* end = nullptr;
  const long long declared = std::strtoll(line.c_str(), &end, 10);
  if (end == line.c_str() || *end != '\0' || declared < 0) {
    return InvalidArgumentError("bad entry count '" + line + "'");
  }

  std::vector<OrderCacheEntry> entries;
  entries.reserve(static_cast<size_t>(declared));
  std::string payload;
  for (long long i = 0; i < declared; ++i) {
    OrderCacheEntry entry;
    OrderingResult& r = entry.result;

    if (Status s = ConsumeTaggedLine(body_in, "entry", &payload); !s.ok()) {
      return s;
    }
    if (payload.size() != 32 ||
        !ParseHex64(std::string_view(payload).substr(0, 16),
                    &entry.fingerprint.hi) ||
        !ParseHex64(std::string_view(payload).substr(16, 16),
                    &entry.fingerprint.lo)) {
      return InvalidArgumentError("bad fingerprint '" + payload + "'");
    }
    if (Status s = ConsumeTaggedLine(body_in, "method", &r.method); !s.ok()) {
      return s;
    }
    if (Status s = ConsumeTaggedLine(body_in, "detail", &r.detail); !s.ok()) {
      return s;
    }

    if (Status s = ConsumeTaggedLine(body_in, "metrics", &payload); !s.ok()) {
      return s;
    }
    {
      std::istringstream metrics(payload);
      int64_t grid_side = 0;
      int converged = 1;
      metrics >> r.lambda2 >> r.num_components >> r.matvecs >> r.restarts >>
          r.spmm_calls >> r.reorth_panels >> r.num_solves >> r.depth >>
          grid_side >> r.grid_cells >> converged;
      if (metrics.fail() || (converged != 0 && converged != 1)) {
        return InvalidArgumentError("corrupt metrics line '" + payload + "'");
      }
      r.grid_side = static_cast<Coord>(grid_side);
      r.converged = converged == 1;
    }

    if (Status s = ConsumeTaggedLine(body_in, "order", &payload); !s.ok()) {
      return s;
    }
    {
      std::istringstream order_in(payload);
      int64_t n = -1;
      order_in >> n;
      if (order_in.fail() || n < 0) {
        return InvalidArgumentError("bad order size in snapshot");
      }
      std::vector<int64_t> ranks(static_cast<size_t>(n));
      for (int64_t k = 0; k < n; ++k) {
        if (!(order_in >> ranks[static_cast<size_t>(k)])) {
          return InvalidArgumentError("truncated order rank list");
        }
      }
      auto order = LinearOrder::FromRanks(std::move(ranks));
      if (!order.ok()) return order.status();
      r.order = *std::move(order);
    }

    if (Status s = ConsumeTaggedLine(body_in, "embedding", &payload); !s.ok()) {
      return s;
    }
    {
      std::istringstream embedding_in(payload);
      int64_t m = -1;
      embedding_in >> m;
      if (embedding_in.fail() || m < 0) {
        return InvalidArgumentError("bad embedding size in snapshot");
      }
      r.embedding.resize(static_cast<size_t>(m));
      for (int64_t k = 0; k < m; ++k) {
        if (!(embedding_in >> r.embedding[static_cast<size_t>(k)])) {
          return InvalidArgumentError("truncated embedding list");
        }
      }
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

namespace {

// write(2) until done; false on any unrecoverable error (EINTR retried).
bool WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Status SaveOrderCacheSnapshotToFile(std::span<const OrderCacheEntry> entries,
                                    const std::string& path,
                                    FaultInjector* faults) {
  std::ostringstream rendered;
  if (Status s = WriteOrderCacheSnapshot(entries, rendered); !s.ok()) return s;
  const std::string payload = std::move(rendered).str();

  // Crash-safe rotation: full payload to "<path>.tmp", fsync, then an
  // atomic rename over `path`. A crash (or injected fault) at any point
  // leaves the previous snapshot readable at `path` — at worst plus a
  // stray .tmp the next successful save overwrites.
  const std::string tmp_path = path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return InternalError("cannot open " + tmp_path + ": " +
                         std::strerror(errno));
  }
  if (FaultFires(faults, "snapshot.write")) {
    // Model a mid-write crash: half the payload lands, the file is
    // abandoned without flush or rename.
    (void)WriteAll(fd, payload.data(), payload.size() / 2);
    ::close(fd);
    return InternalError("injected snapshot.write fault: abandoned "
                         "half-written " + tmp_path);
  }
  if (!WriteAll(fd, payload.data(), payload.size())) {
    const Status error =
        InternalError("write to " + tmp_path + " failed: " +
                      std::strerror(errno));
    ::close(fd);
    return error;
  }
  if (::fsync(fd) != 0) {
    const Status error = InternalError("fsync of " + tmp_path + " failed: " +
                                       std::strerror(errno));
    ::close(fd);
    return error;
  }
  if (::close(fd) != 0) {
    return InternalError("close of " + tmp_path + " failed: " +
                         std::strerror(errno));
  }
  if (FaultFires(faults, "snapshot.rename")) {
    return InternalError("injected snapshot.rename fault: flushed " +
                         tmp_path + " never renamed");
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return InternalError("rename " + tmp_path + " -> " + path + " failed: " +
                         std::strerror(errno));
  }
  return OkStatus();
}

StatusOr<std::vector<OrderCacheEntry>> LoadOrderCacheSnapshotFromFile(
    const std::string& path) {
  StatusOr<std::vector<OrderCacheEntry>> parsed = [&] {
    std::ifstream in(path);
    if (!in.is_open()) {
      return StatusOr<std::vector<OrderCacheEntry>>(
          NotFoundError("cannot open " + path));
    }
    return ReadOrderCacheSnapshot(in);
  }();
  if (parsed.ok() || parsed.status().code() == StatusCode::kNotFound) {
    return parsed;
  }
  // The file exists but is damaged: quarantine it so the next start is
  // clean (and cold) while the bytes stay around for inspection.
  const std::string quarantine = path + ".corrupt";
  if (std::rename(path.c_str(), quarantine.c_str()) != 0) {
    return Status(parsed.status().code(),
                  parsed.status().message() + " (quarantine to " +
                      quarantine + " failed: " + std::strerror(errno) + ")");
  }
  return Status(parsed.status().code(), parsed.status().message() +
                                            " (quarantined to " + quarantine +
                                            ")");
}

Status SaveLinearOrderToFile(const LinearOrder& order,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return InternalError("cannot open " + path);
  return WriteLinearOrder(order, out);
}

StatusOr<LinearOrder> LoadLinearOrderFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return NotFoundError("cannot open " + path);
  return ReadLinearOrder(in);
}

Status SavePointSetToFile(const PointSet& points, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return InternalError("cannot open " + path);
  return WritePointSet(points, out);
}

StatusOr<PointSet> LoadPointSetFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return NotFoundError("cannot open " + path);
  return ReadPointSet(in);
}

}  // namespace spectral
