#include "core/mapping_service.h"

#include <algorithm>
#include <utility>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace spectral {

namespace {

// How a batch slot was served, recorded on OrderingResult::detail. The tag
// mirrors what a one-at-a-time replay would report, so batched and serial
// results stay byte-identical.
enum class ServeKind { kOff, kHit, kMiss };

void Annotate(OrderingResult& result, ServeKind kind) {
  switch (kind) {
    case ServeKind::kOff:
      result.detail += " | cache=off";
      return;
    case ServeKind::kHit:
      result.detail += " | cache=hit";
      return;
    case ServeKind::kMiss:
      result.detail += " | cache=miss";
      return;
  }
}

}  // namespace

MappingService::MappingService(MappingServiceOptions options)
    : options_(options) {
  int threads = options_.parallelism;
  if (threads <= 0) threads = ThreadPool::DefaultThreads();
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

MappingService::~MappingService() = default;

StatusOr<OrderingResult> MappingService::Order(const OrderingRequest& request) {
  auto results = OrderBatch(std::span<const OrderingRequest>(&request, 1));
  return std::move(results.front());
}

std::vector<StatusOr<OrderingResult>> MappingService::OrderBatch(
    std::span<const OrderingRequest> requests) {
  const WallTimer batch_timer;
  const bool cache_enabled = options_.cache_capacity > 0;

  // One job per distinct fingerprint; slots remember which requests it
  // serves, in input order (slots.front() is the first occurrence).
  struct Job {
    const OrderingRequest* request = nullptr;
    Fingerprint128 fingerprint;
    std::vector<size_t> slots;
    StatusOr<OrderingResult> result{Status(StatusCode::kInternal, "unsolved")};
    bool cached = false;
    /// True once an engine actually ran the request (as opposed to engine
    /// construction failing), so the solve counters stay honest.
    bool engine_ran = false;
    /// Ladder rung 1 ran: the solve was retried with an escalated budget.
    bool retried = false;
    /// Ladder rung 2 ran: the served order is degraded (never cached).
    bool degraded = false;
  };

  std::vector<StatusOr<OrderingResult>> results(
      requests.size(), StatusOr<OrderingResult>(
                           Status(StatusCode::kInternal, "unassigned slot")));
  std::vector<Job> jobs;
  std::unordered_map<Fingerprint128, size_t, Fingerprint128Hash> job_of;
  int64_t invalid = 0;

  for (size_t i = 0; i < requests.size(); ++i) {
    if (Status s = requests[i].Validate(); !s.ok()) {
      results[i] = std::move(s);
      ++invalid;
      continue;
    }
    const Fingerprint128 fp = requests[i].Fingerprint();
    auto [it, inserted] = job_of.try_emplace(fp, jobs.size());
    if (inserted) {
      Job job;
      job.request = &requests[i];
      job.fingerprint = fp;
      jobs.push_back(std::move(job));
    }
    jobs[it->second].slots.push_back(i);
  }

  // Cache lookups, all up-front (solves below never change what this batch
  // hits: a duplicate of a missed request is served from the batch's own
  // solve, exactly as a serial replay would find it freshly cached).
  std::vector<size_t> to_solve;
  if (cache_enabled) {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t j = 0; j < jobs.size(); ++j) {
      auto it = index_.find(jobs[j].fingerprint);
      if (it == index_.end()) {
        to_solve.push_back(j);
        continue;
      }
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      jobs[j].result = it->second->second;
      jobs[j].cached = true;
    }
  } else {
    to_solve.resize(jobs.size());
    for (size_t j = 0; j < jobs.size(); ++j) to_solve[j] = j;
  }

  // Largest solves first: the biggest eigenproblem dominates the critical
  // path, so it must start before the small fry. Ties keep input order.
  std::sort(to_solve.begin(), to_solve.end(), [&](size_t a, size_t b) {
    const int64_t sa = jobs[a].request->InputSize();
    const int64_t sb = jobs[b].request->InputSize();
    if (sa != sb) return sa > sb;
    return jobs[a].slots.front() < jobs[b].slots.front();
  });

  auto solve = [&](size_t j) {
    Job& job = jobs[j];
    auto engine = MakeOrderingEngine(job.request->engine);
    if (!engine.ok()) {
      job.result = engine.status();
      return;
    }
    job.engine_ran = true;
    // Hand the batch pool down so component solves and matvecs reuse it
    // (no nested pools), and attach this service as the sub-request router
    // so composite engines (sharded-spectral) cache their shard solves
    // here. Neither runtime field ever changes the result.
    OrderingRequest shared = *job.request;
    if (pool_ != nullptr) shared.options.spectral.pool = pool_.get();
    shared.options.service = this;
    shared.options.spectral.faults = options_.faults;
    job.result = (*engine)->Order(shared);

    // Degradation ladder: an ok-but-unconverged order climbs two rungs —
    // one retry with an escalated restart budget, then a degraded serve.
    // Whatever rung wins, an unconverged result is never cached (gated at
    // the insert below on result->converged).
    if (!options_.degrade_unconverged || !job.result.ok() ||
        job.result->converged) {
      return;
    }
    job.retried = true;
    OrderingRequest retry = shared;
    int& budget = retry.options.spectral.fiedler.max_restarts;
    budget = std::max(1, budget * std::max(1, options_.retry_restart_multiplier));
    if (auto second = (*engine)->Order(retry);
        second.ok() && second->converged) {
      job.result = std::move(second);
      return;
    }
    // Rung 2. Point inputs fall back to the configured geometry-only curve
    // engine; graph inputs have no geometry to fall back on and serve the
    // best-effort spectral order instead. Both are tagged degraded and
    // carry converged == false.
    job.degraded = true;
    if (job.request->points != nullptr &&
        job.request->input != OrderingInputKind::kGraph &&
        job.request->engine != options_.fallback_engine) {
      auto fallback_engine = MakeOrderingEngine(options_.fallback_engine);
      if (fallback_engine.ok()) {
        auto fallback = (*fallback_engine)
                            ->Order(OrderingRequest::ForPoints(
                                job.request->points,
                                options_.fallback_engine));
        if (fallback.ok()) {
          fallback->converged = false;
          fallback->detail += " | degraded=" + options_.fallback_engine;
          job.result = std::move(fallback);
          return;
        }
      }
    }
    job.result->detail += " | degraded=unconverged";
  };

  if (pool_ != nullptr && to_solve.size() > 1) {
    pool_->ParallelFor(0, static_cast<int64_t>(to_solve.size()), 1,
                       [&](int64_t i) {
                         solve(to_solve[static_cast<size_t>(i)]);
                       });
  } else {
    for (size_t j : to_solve) solve(j);
  }

  // Publish counters and cache inserts (first-occurrence order keeps the
  // LRU state deterministic) under the lock; the O(n)-sized per-slot
  // result copies are built after it drops so concurrent callers only
  // contend on the bookkeeping.
  {
    const double batch_ms = batch_timer.ElapsedSeconds() * 1e3;
    std::lock_guard<std::mutex> lock(mu_);
    stats_.requests += static_cast<int64_t>(requests.size());
    stats_.failures += invalid;
    stats_.batches += 1;
    stats_.coalesced_requests += static_cast<int64_t>(requests.size()) -
                                 invalid - static_cast<int64_t>(jobs.size());
    stats_.batch_latency_total_ms += batch_ms;
    stats_.batch_latency_max_ms =
        std::max(stats_.batch_latency_max_ms, batch_ms);
    for (Job& job : jobs) {
      stats_.retried_solves += job.retried ? 1 : 0;
      if (!job.result.ok()) {
        // Engine-construction failures (unknown name) never ran a solve
        // and keep the solves == cache_misses invariant out of the
        // counters.
        stats_.solves += job.engine_ran ? 1 : 0;
        stats_.cache_misses += job.engine_ran ? 1 : 0;
        stats_.failures += static_cast<int64_t>(job.slots.size());
        continue;
      }
      stats_.degraded_orders +=
          job.degraded ? static_cast<int64_t>(job.slots.size()) : 0;
      if (job.cached) {
        stats_.cache_hits += static_cast<int64_t>(job.slots.size());
      } else {
        stats_.cache_misses += 1;
        stats_.solves += 1;
        stats_.solver_matvecs += job.result->matvecs;
        stats_.cache_hits += static_cast<int64_t>(job.slots.size()) - 1;
        // Unconverged (and therefore degraded) orders must never poison
        // the cache or any snapshot exported from it.
        if (cache_enabled && job.result->converged) {
          InsertLocked(job.fingerprint, *job.result);
        }
      }
    }
  }
  for (Job& job : jobs) {
    if (!job.result.ok()) {
      for (size_t slot : job.slots) results[slot] = job.result.status();
      continue;
    }
    for (size_t k = 0; k < job.slots.size(); ++k) {
      OrderingResult copy = *job.result;
      Annotate(copy, !cache_enabled ? ServeKind::kOff
               : (job.cached || k > 0) ? ServeKind::kHit
                                       : ServeKind::kMiss);
      results[job.slots[k]] = std::move(copy);
    }
  }
  return results;
}

void MappingService::InsertLocked(const Fingerprint128& fingerprint,
                                  const OrderingResult& result) {
  auto it = index_.find(fingerprint);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(fingerprint, result);
  index_[fingerprint] = lru_.begin();
  while (lru_.size() > options_.cache_capacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    stats_.cache_evictions += 1;
  }
}

MappingServiceStats MappingService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MappingService::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.Reset();
}

std::vector<OrderCacheEntry> MappingService::ExportCache() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<OrderCacheEntry> entries;
  entries.reserve(lru_.size());
  for (const auto& [fingerprint, result] : lru_) {
    entries.push_back(OrderCacheEntry{fingerprint, result});
  }
  return entries;
}

int64_t MappingService::ImportCache(std::span<const OrderCacheEntry> entries) {
  if (options_.cache_capacity == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  // Insert in reverse so the snapshot's most-recent entry ends up at the
  // front of the LRU; entries past capacity would be evicted immediately,
  // so they are skipped up front (without bumping the eviction counter —
  // restoring a snapshot is not cache traffic).
  const size_t limit = std::min(entries.size(), options_.cache_capacity);
  int64_t inserted = 0;
  for (size_t i = limit; i-- > 0;) {
    const OrderCacheEntry& entry = entries[i];
    if (index_.find(entry.fingerprint) != index_.end()) continue;
    lru_.emplace_front(entry.fingerprint, entry.result);
    index_[entry.fingerprint] = lru_.begin();
    ++inserted;
  }
  while (lru_.size() > options_.cache_capacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  return inserted;
}

void MappingService::ClearCache() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t MappingService::CacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace spectral
