// Linear orders induced by space-filling curves over arbitrary point sets:
// points are ranked by their curve index within the smallest enclosing grid
// the curve family supports. For a full power-of-two grid the rank equals
// the curve position itself, so this generalizes the textbook usage.

#ifndef SPECTRAL_LPM_CORE_CURVE_ORDER_H_
#define SPECTRAL_LPM_CORE_CURVE_ORDER_H_

#include "core/linear_order.h"
#include "sfc/curve_registry.h"
#include "space/point_set.h"
#include "util/status.h"

namespace spectral {

/// Orders `points` by `kind`. The points are translated to the origin and
/// the curve is instantiated on the smallest legal enclosing grid of the
/// family (exact per-axis extents for sweep/snake/spiral, per-axis
/// power-of-three sides for peano, a padded hyper-cube for the
/// power-of-two families). Fails if the enclosing grid exceeds the curve
/// family's index width. When `grid_used` is non-null it receives the grid
/// the order was built on (one bounding-box scan serves both), which is
/// how the ordering-engine registry reports padding diagnostics.
StatusOr<LinearOrder> OrderByCurve(const PointSet& points, CurveKind kind,
                                   GridSpec* grid_used = nullptr);

/// Orders `points` by an existing curve instance; every point must lie
/// inside curve.grid().
StatusOr<LinearOrder> OrderByCurveOnGrid(const PointSet& points,
                                         const SpaceFillingCurve& curve);

}  // namespace spectral

#endif  // SPECTRAL_LPM_CORE_CURVE_ORDER_H_
