// Spectral LPM — the paper's primary contribution (Figure 2 pseudo code):
//
//   1. model the points as a graph (edge iff Manhattan distance 1),
//   2. form the Laplacian L = D - W,
//   3. compute the Fiedler pair (lambda2, v2),
//   4. assign each point its Fiedler component,
//   5. the linear order is the sort order of those components.
//
// Extensions from section 4 are first-class options: affinity edges between
// correlated points, 8-connectivity / Moore neighborhoods, and arbitrary
// positive edge weights (the mapper also accepts a user-built Graph).

#ifndef SPECTRAL_LPM_CORE_SPECTRAL_LPM_H_
#define SPECTRAL_LPM_CORE_SPECTRAL_LPM_H_

#include <cstdint>
#include <vector>

#include "core/linear_order.h"
#include "core/multilevel.h"
#include "eigen/fiedler.h"
#include "graph/graph.h"
#include "graph/point_graph.h"
#include "space/point_set.h"
#include "util/status.h"

namespace spectral {

class FaultInjector;

/// Options for SpectralMapper.
struct SpectralLpmOptions {
  /// How the point graph is built (step 1). Ignored by MapGraph.
  PointGraphOptions graph;
  /// Extra edges by *point index*, each pulling its endpoints together in
  /// the 1-d order (section 4: "add an edge (p, q) to inform Spectral LPM
  /// that p and q should be treated as if they were at distance 1").
  std::vector<GraphEdge> affinity_edges;
  /// Eigensolver configuration.
  FiedlerOptions fiedler;
  /// Use the centered coordinate functions of the point set to pick a
  /// canonical Fiedler vector when lambda2 is degenerate (see
  /// eigen/fiedler.h). Keeps square grids deterministic and axis-fair.
  bool canonicalize_with_axes = true;
  /// Fiedler components within rank_quantum_rel * max|component| of each
  /// other are treated as ties and broken by point index. Grid graphs
  /// produce eigenvectors with exactly-tied groups (product structure);
  /// quantizing makes the final order identical across eigensolver engines
  /// instead of depending on 1e-12-level solver noise.
  double rank_quantum_rel = 1e-7;
  /// Components with at least this many vertices get the multilevel warm
  /// start: build the heavy-edge-matching hierarchy once, dense-solve the
  /// coarsest Laplacian, prolong + smooth the eigenvector block up, and
  /// feed it to the block solver so the fine-level solve only polishes
  /// (core/multilevel.h). Same order as a cold solve — the fine solve
  /// converges to the same tolerance either way (property-tested) — at a
  /// fraction of the matvec/reorthogonalization cost. 0 disables warm
  /// starts (cold block solves everywhere).
  int64_t warm_start_threshold = 256;
  /// Legacy trigger for the "spectral-multilevel" engine: components with
  /// at least this many vertices also take the warm-started path. Since
  /// the fine solve now polishes to full accuracy and canonicalizes with
  /// the axes, this path produces the *same order* as the flat engine —
  /// the two knobs differ only in who sets them. 0 leaves the decision to
  /// warm_start_threshold.
  int64_t multilevel_threshold = 0;
  /// Hierarchy/smoothing shape for the warm-started path. Its embedded
  /// FiedlerOptions is ignored here: `fiedler` above governs the finest
  /// solve on every path.
  MultilevelOptions multilevel;
  /// Worker threads for the mapping. Disconnected components are solved
  /// concurrently (largest-first work queue) and Lanczos matvecs on large
  /// components are row-partitioned across the same pool. 0 = use
  /// hardware_concurrency; 1 = the historical serial path. The output is
  /// byte-identical for every value: each component's solve is independent
  /// and deterministic, and the concatenation order is fixed before any
  /// solve starts.
  int parallelism = 0;
  /// Optional external worker pool (not owned; must outlive the call). When
  /// set, component solves and row-partitioned matvecs run on this pool and
  /// `parallelism` is ignored — MappingService hands its batch fan-out pool
  /// down here so one set of workers serves requests, components, and
  /// matvecs instead of pools nesting. Safe to use when the mapper itself
  /// runs inside a task of the same pool (the loops are ParallelFor-based:
  /// the caller participates, so they degrade to serial instead of
  /// deadlocking). Like `parallelism`, it never changes the result and is
  /// excluded from request fingerprints.
  ThreadPool* pool = nullptr;
  /// Optional fault-injection registry (not owned; must outlive the call).
  /// When set in a SPECTRAL_FAULTS build, the "solver.converge" site can
  /// force component solves to report converged == false, exercising the
  /// retry/degrade ladder above. Like `pool`, it never changes the order of
  /// a fault-free run and is excluded from request fingerprints; in normal
  /// builds it is dead weight (every site folds to a no-op).
  FaultInjector* faults = nullptr;
};

/// Result of a spectral mapping.
struct SpectralLpmResult {
  /// The linear order S over the input points.
  LinearOrder order;
  /// Fiedler component assigned to each point (concatenated across
  /// components; each component's vector has unit norm).
  Vector values;
  /// Algebraic connectivity of the largest component.
  double lambda2 = 0.0;
  int64_t num_components = 1;
  /// Eigensolver matvec count (Krylov paths) summed over components.
  int64_t matvecs = 0;
  /// Restart cycles summed over components (block/scalar Krylov paths).
  int64_t restarts = 0;
  /// Fused block-operator (SpMM) applications summed over components.
  int64_t spmm_calls = 0;
  /// Reorthogonalization panel-kernel applications summed over components.
  int64_t reorth_panels = 0;
  /// Per-kernel wall time + deterministic flop estimates summed over
  /// components (block path only; see eigen/kernel_profile.h).
  KernelProfile profile;
  /// "dense-jacobi", "block-lanczos[+warm]", "lanczos", or
  /// "multilevel(...)+..." (of the largest component).
  std::string method_used;
  /// AND over the per-component solves: false when any component's Fiedler
  /// pair missed tolerance (or an injected "solver.converge" fault fired)
  /// and its order is a best-effort estimate. See FiedlerResult::converged.
  bool converged = true;
};

/// Maps multi-dimensional point sets to linear orders via the spectrum of
/// their neighborhood graph.
class SpectralMapper {
 public:
  explicit SpectralMapper(SpectralLpmOptions options = {});

  /// Runs the full pipeline on `points`. Disconnected graphs are handled by
  /// ordering each connected component independently and concatenating
  /// components (largest first; ties by lowest point index), since the
  /// Fiedler vector is only defined per component.
  StatusOr<SpectralLpmResult> Map(const PointSet& points) const;

  /// Section-4 fully-custom entry point: the caller supplies the graph
  /// (weights encode mapping priority). `points` is only used to
  /// canonicalize degenerate eigenspaces and may be null.
  StatusOr<SpectralLpmResult> MapGraph(const Graph& graph,
                                       const PointSet* points) const;

  const SpectralLpmOptions& options() const { return options_; }

 private:
  SpectralLpmOptions options_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_CORE_SPECTRAL_LPM_H_
