// Spectral LPM — the paper's primary contribution (Figure 2 pseudo code):
//
//   1. model the points as a graph (edge iff Manhattan distance 1),
//   2. form the Laplacian L = D - W,
//   3. compute the Fiedler pair (lambda2, v2),
//   4. assign each point its Fiedler component,
//   5. the linear order is the sort order of those components.
//
// Extensions from section 4 are first-class options: affinity edges between
// correlated points, 8-connectivity / Moore neighborhoods, and arbitrary
// positive edge weights (the mapper also accepts a user-built Graph).

#ifndef SPECTRAL_LPM_CORE_SPECTRAL_LPM_H_
#define SPECTRAL_LPM_CORE_SPECTRAL_LPM_H_

#include <cstdint>
#include <vector>

#include "core/linear_order.h"
#include "core/multilevel.h"
#include "eigen/fiedler.h"
#include "graph/graph.h"
#include "graph/point_graph.h"
#include "space/point_set.h"
#include "util/status.h"

namespace spectral {

/// Options for SpectralMapper.
struct SpectralLpmOptions {
  /// How the point graph is built (step 1). Ignored by MapGraph.
  PointGraphOptions graph;
  /// Extra edges by *point index*, each pulling its endpoints together in
  /// the 1-d order (section 4: "add an edge (p, q) to inform Spectral LPM
  /// that p and q should be treated as if they were at distance 1").
  std::vector<GraphEdge> affinity_edges;
  /// Eigensolver configuration.
  FiedlerOptions fiedler;
  /// Use the centered coordinate functions of the point set to pick a
  /// canonical Fiedler vector when lambda2 is degenerate (see
  /// eigen/fiedler.h). Keeps square grids deterministic and axis-fair.
  bool canonicalize_with_axes = true;
  /// Fiedler components within rank_quantum_rel * max|component| of each
  /// other are treated as ties and broken by point index. Grid graphs
  /// produce eigenvectors with exactly-tied groups (product structure);
  /// quantizing makes the final order identical across eigensolver engines
  /// instead of depending on 1e-12-level solver noise.
  double rank_quantum_rel = 1e-7;
  /// Components with at least this many vertices are solved with the
  /// multilevel V-cycle (core/multilevel.h) instead of a flat eigensolve.
  /// 0 disables multilevel entirely. Note: the multilevel path tracks a
  /// single eigenpair, so degenerate-eigenspace canonicalization does not
  /// apply to it.
  int64_t multilevel_threshold = 0;
  /// Multilevel tuning, used when multilevel_threshold triggers. The
  /// embedded FiedlerOptions governs the coarsest solve; `fiedler` above
  /// still governs flat solves of small components.
  MultilevelOptions multilevel;
  /// Worker threads for the mapping. Disconnected components are solved
  /// concurrently (largest-first work queue) and Lanczos matvecs on large
  /// components are row-partitioned across the same pool. 0 = use
  /// hardware_concurrency; 1 = the historical serial path. The output is
  /// byte-identical for every value: each component's solve is independent
  /// and deterministic, and the concatenation order is fixed before any
  /// solve starts.
  int parallelism = 0;
  /// Optional external worker pool (not owned; must outlive the call). When
  /// set, component solves and row-partitioned matvecs run on this pool and
  /// `parallelism` is ignored — MappingService hands its batch fan-out pool
  /// down here so one set of workers serves requests, components, and
  /// matvecs instead of pools nesting. Safe to use when the mapper itself
  /// runs inside a task of the same pool (the loops are ParallelFor-based:
  /// the caller participates, so they degrade to serial instead of
  /// deadlocking). Like `parallelism`, it never changes the result and is
  /// excluded from request fingerprints.
  ThreadPool* pool = nullptr;
};

/// Result of a spectral mapping.
struct SpectralLpmResult {
  /// The linear order S over the input points.
  LinearOrder order;
  /// Fiedler component assigned to each point (concatenated across
  /// components; each component's vector has unit norm).
  Vector values;
  /// Algebraic connectivity of the largest component.
  double lambda2 = 0.0;
  int64_t num_components = 1;
  /// Eigensolver matvec count (Lanczos path) summed over components.
  int64_t matvecs = 0;
  /// "dense-jacobi" or "lanczos" (of the largest component).
  std::string method_used;
};

/// Maps multi-dimensional point sets to linear orders via the spectrum of
/// their neighborhood graph.
class SpectralMapper {
 public:
  explicit SpectralMapper(SpectralLpmOptions options = {});

  /// Runs the full pipeline on `points`. Disconnected graphs are handled by
  /// ordering each connected component independently and concatenating
  /// components (largest first; ties by lowest point index), since the
  /// Fiedler vector is only defined per component.
  StatusOr<SpectralLpmResult> Map(const PointSet& points) const;

  /// Section-4 fully-custom entry point: the caller supplies the graph
  /// (weights encode mapping priority). `points` is only used to
  /// canonicalize degenerate eigenspaces and may be null.
  StatusOr<SpectralLpmResult> MapGraph(const Graph& graph,
                                       const PointSet* points) const;

  const SpectralLpmOptions& options() const { return options_; }

 private:
  SpectralLpmOptions options_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_CORE_SPECTRAL_LPM_H_
