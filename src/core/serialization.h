// Text serialization for point sets and linear orders, so mappings can be
// computed offline (the eigensolve) and shipped to the system that lays out
// the data. Format is line-oriented, versioned, and human-inspectable.

#ifndef SPECTRAL_LPM_CORE_SERIALIZATION_H_
#define SPECTRAL_LPM_CORE_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "core/linear_order.h"
#include "space/point_set.h"
#include "util/status.h"

namespace spectral {

/// Writes `order` as:
///   spectral-lpm-order v1
///   <n>
///   <rank of point 0>
///   ...
Status WriteLinearOrder(const LinearOrder& order, std::ostream& out);

/// Parses the WriteLinearOrder format; validates the permutation.
StatusOr<LinearOrder> ReadLinearOrder(std::istream& in);

/// Writes `points` as:
///   spectral-lpm-points v1
///   <n> <dims>
///   <c0> <c1> ... (one point per line)
Status WritePointSet(const PointSet& points, std::ostream& out);

/// Parses the WritePointSet format.
StatusOr<PointSet> ReadPointSet(std::istream& in);

/// Convenience file wrappers.
Status SaveLinearOrderToFile(const LinearOrder& order,
                             const std::string& path);
StatusOr<LinearOrder> LoadLinearOrderFromFile(const std::string& path);
Status SavePointSetToFile(const PointSet& points, const std::string& path);
StatusOr<PointSet> LoadPointSetFromFile(const std::string& path);

}  // namespace spectral

#endif  // SPECTRAL_LPM_CORE_SERIALIZATION_H_
