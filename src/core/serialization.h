// Text serialization for point sets and linear orders, so mappings can be
// computed offline (the eigensolve) and shipped to the system that lays out
// the data. Format is line-oriented, versioned, and human-inspectable.

#ifndef SPECTRAL_LPM_CORE_SERIALIZATION_H_
#define SPECTRAL_LPM_CORE_SERIALIZATION_H_

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/linear_order.h"
#include "core/mapping_service.h"
#include "space/point_set.h"
#include "util/status.h"

namespace spectral {

/// Writes `order` as:
///   spectral-lpm-order v1
///   <n>
///   <rank of point 0>
///   ...
Status WriteLinearOrder(const LinearOrder& order, std::ostream& out);

/// Parses the WriteLinearOrder format; validates the permutation.
StatusOr<LinearOrder> ReadLinearOrder(std::istream& in);

/// Writes `points` as:
///   spectral-lpm-points v1
///   <n> <dims>
///   <c0> <c1> ... (one point per line)
Status WritePointSet(const PointSet& points, std::ostream& out);

/// Parses the WritePointSet format.
StatusOr<PointSet> ReadPointSet(std::istream& in);

/// Writes a MappingService order-cache snapshot (ExportCache output,
/// most-recently-used first) as:
///   spectral-lpm-cache v2
///   <num_entries>
///   entry <32-hex fingerprint>
///   method <method string>
///   detail <detail string>
///   metrics <lambda2> <num_components> <matvecs> <restarts> <spmm_calls>
///           <reorth_panels> <num_solves> <depth> <grid_side> <grid_cells>
///           <converged>
///   order <n> <rank of point 0> ... <rank of point n-1>
///   embedding <m> <e0> ... <e_{m-1}>
///   checksum <16-hex hash of everything above>
/// (each entry is those six lines; doubles are written with 17 significant
/// digits so restored results are bit-identical to the solved ones). The
/// checksum trailer is the last line: a torn or bit-flipped file fails
/// verification before any entry is parsed.
Status WriteOrderCacheSnapshot(std::span<const OrderCacheEntry> entries,
                               std::ostream& out);

/// Appends the "checksum <16-hex>" trailer the reader expects to an
/// already-rendered snapshot body (magic through the final embedding line,
/// newline-terminated). WriteOrderCacheSnapshot calls this internally; it
/// is exported so tests can author snapshots with corrupt *bodies* that
/// still pass the checksum gate.
std::string WithSnapshotChecksum(std::string body);

/// Parses the WriteOrderCacheSnapshot format. Truncated, corrupt, or
/// wrong-version input yields an InvalidArgument Status (never a crash, so
/// a server restoring a damaged snapshot simply starts cold).
StatusOr<std::vector<OrderCacheEntry>> ReadOrderCacheSnapshot(
    std::istream& in);

class FaultInjector;

/// Convenience file wrappers. Snapshot saves are crash-safe: the payload is
/// written to "<path>.tmp", flushed to disk (fsync), and atomically renamed
/// over `path`, so a crash at any point leaves either the previous snapshot
/// or a stray .tmp — never a torn file at `path`. `faults` (optional) arms
/// the "snapshot.write" site (abandons a half-written temp file) and the
/// "snapshot.rename" site (fails between flush and rename) in
/// SPECTRAL_FAULTS builds.
Status SaveOrderCacheSnapshotToFile(std::span<const OrderCacheEntry> entries,
                                    const std::string& path,
                                    FaultInjector* faults = nullptr);
/// Loads `path`, quarantining damage: a snapshot that exists but fails
/// checksum or parse is renamed to "<path>.corrupt" and the parse error is
/// returned — the next start is cold, never a crash, and the damaged bytes
/// are kept for inspection. A missing file returns NotFound and touches
/// nothing.
StatusOr<std::vector<OrderCacheEntry>> LoadOrderCacheSnapshotFromFile(
    const std::string& path);
Status SaveLinearOrderToFile(const LinearOrder& order,
                             const std::string& path);
StatusOr<LinearOrder> LoadLinearOrderFromFile(const std::string& path);
Status SavePointSetToFile(const PointSet& points, const std::string& path);
StatusOr<PointSet> LoadPointSetFromFile(const std::string& path);

}  // namespace spectral

#endif  // SPECTRAL_LPM_CORE_SERIALIZATION_H_
