#include "core/ordering_request.h"

#include <utility>

#include "sfc/curve_registry.h"

namespace spectral {

namespace {

// Non-owning view of an object the caller keeps alive (aliasing
// constructor with an empty control block).
template <typename T>
std::shared_ptr<const T> Borrow(const T& object) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>(), &object);
}

void HashPointSet(Hasher& h, const PointSet& points) {
  h.MixInt(points.dims()).MixInt(points.size());
  for (int64_t i = 0; i < points.size(); ++i) {
    for (const Coord c : points[i]) h.MixInt(c);
  }
}

void HashGraph(Hasher& h, const Graph& graph) {
  h.MixInt(graph.num_vertices()).MixInt(graph.num_edges());
  graph.ForEachEdge([&h](int64_t u, int64_t v, double w) {
    h.MixInt(u).MixInt(v).MixDouble(w);
  });
}

void HashEdges(Hasher& h, const std::vector<GraphEdge>& edges) {
  h.MixUint(edges.size());
  for (const GraphEdge& e : edges) {
    h.MixInt(e.u).MixInt(e.v).MixDouble(e.weight);
  }
}

void HashFiedlerOptions(Hasher& h, const FiedlerOptions& o) {
  // matvec_pool is a runtime resource with no effect on the result
  // (row-partitioned matvecs are bit-identical to serial) — excluded.
  h.MixEnum(o.method)
      .MixInt(o.dense_threshold)
      .MixInt(o.num_pairs)
      .MixDouble(o.tol)
      .MixInt(o.max_basis)
      .MixInt(o.max_restarts)
      .MixUint(o.seed)
      .MixInt(o.block_size)
      .MixInt(o.block_max_basis)
      .MixInt(o.cheb_degree_max)
      .MixDouble(o.degeneracy_rel_tol)
      .MixDouble(o.degeneracy_abs_tol)
      .MixEnum(o.degeneracy_policy);
}

void HashMultilevelOptions(Hasher& h, const MultilevelOptions& o) {
  h.MixInt(o.coarsen.coarsest_size)
      .MixDouble(o.coarsen.min_shrink_factor)
      .MixInt(o.coarsen.max_levels)
      .MixInt(o.smooth_steps)
      .MixDouble(o.jacobi_omega)
      .MixDouble(o.level_tol)
      .MixInt(o.level_max_basis)
      .MixInt(o.level_max_restarts);
  // o.fiedler is not hashed: every caller overwrites it with the spectral
  // options' fiedler before solving (see SpectralMapper::MapGraph).
}

void HashSpectralOptions(Hasher& h, const SpectralLpmOptions& o) {
  // parallelism and pool are excluded: the mapping is byte-identical for
  // every thread count, so they must not split the cache key space.
  h.MixEnum(o.graph.connectivity)
      .MixInt(o.graph.radius)
      .MixDouble(o.graph.weight)
      .MixEnum(o.graph.kernel)
      .MixDouble(o.graph.gaussian_sigma)
      .MixBool(o.canonicalize_with_axes)
      .MixDouble(o.rank_quantum_rel)
      .MixInt(o.warm_start_threshold)
      .MixInt(o.multilevel_threshold);
  HashEdges(h, o.affinity_edges);
  HashFiedlerOptions(h, o.fiedler);
  HashMultilevelOptions(h, o.multilevel);
}

// Only the options the named engine actually reads participate in the
// fingerprint — the "effective options". Hashing fields an engine ignores
// would split the cache key space between requests with byte-identical
// results (e.g. two hilbert requests differing only in spectral solver
// settings). bisection.base is always excluded: the bisection engine
// overwrites it with `spectral`. The runtime `service` routing pointer is
// always excluded, like `pool`: it never changes the computed order.
// Unknown engine names hash every semantic field, which stays conservative
// for backends registered later.
void HashEngineOptions(Hasher& h, std::string_view engine,
                       const OrderingEngineOptions& o) {
  if (CurveKindFromName(engine).ok()) return;  // geometry-only engines
  const bool multilevel = engine == "spectral-multilevel";
  const bool bisection = engine == "bisection";
  const bool sharded = engine == "sharded-spectral";
  const bool known =
      engine == "spectral" || multilevel || bisection || sharded;
  HashSpectralOptions(h, o.spectral);
  if (multilevel || !known) h.MixInt(o.multilevel_default_threshold);
  if (bisection || !known) {
    h.MixInt(o.bisection.leaf_size).MixInt(o.bisection.max_depth);
  }
  if (sharded || !known) {
    h.MixInt(o.sharded.num_shards)
        .MixInt(o.sharded.coarsen_target)
        .MixInt(o.sharded.max_coarsen_levels);
  }
}

}  // namespace

OrderingRequest OrderingRequest::ForPoints(const PointSet& points,
                                           std::string_view engine) {
  return ForPoints(Borrow(points), engine);
}

OrderingRequest OrderingRequest::ForPoints(
    std::shared_ptr<const PointSet> points, std::string_view engine) {
  OrderingRequest request;
  request.engine = std::string(engine);
  request.input = OrderingInputKind::kPoints;
  request.points = std::move(points);
  return request;
}

OrderingRequest OrderingRequest::ForPointsWithAffinity(
    const PointSet& points, std::vector<GraphEdge> affinity_edges,
    std::string_view engine) {
  OrderingRequest request;
  request.engine = std::string(engine);
  request.input = OrderingInputKind::kPointsWithAffinity;
  request.points = Borrow(points);
  request.affinity_edges = std::move(affinity_edges);
  return request;
}

OrderingRequest OrderingRequest::ForGraph(const Graph& graph,
                                          const PointSet* canonical_points,
                                          std::string_view engine) {
  OrderingRequest request;
  request.engine = std::string(engine);
  request.input = OrderingInputKind::kGraph;
  request.graph = Borrow(graph);
  if (canonical_points != nullptr) request.points = Borrow(*canonical_points);
  return request;
}

OrderingRequest OrderingRequest::ForGraph(
    std::shared_ptr<const Graph> graph,
    std::shared_ptr<const PointSet> canonical_points,
    std::string_view engine) {
  OrderingRequest request;
  request.engine = std::string(engine);
  request.input = OrderingInputKind::kGraph;
  request.graph = std::move(graph);
  request.points = std::move(canonical_points);
  return request;
}

Status OrderingRequest::Validate() const {
  if (engine.empty()) {
    return InvalidArgumentError("ordering request has no engine name");
  }
  switch (input) {
    case OrderingInputKind::kPoints:
      if (points == nullptr) {
        return InvalidArgumentError("kPoints request carries no point set");
      }
      if (graph != nullptr) {
        return InvalidArgumentError(
            "kPoints request must not carry a graph (use kGraph)");
      }
      if (!affinity_edges.empty()) {
        return InvalidArgumentError(
            "kPoints request must not carry affinity edges "
            "(use kPointsWithAffinity)");
      }
      return OkStatus();
    case OrderingInputKind::kPointsWithAffinity:
      if (points == nullptr) {
        return InvalidArgumentError(
            "kPointsWithAffinity request carries no point set");
      }
      if (graph != nullptr) {
        return InvalidArgumentError(
            "kPointsWithAffinity request must not carry a graph");
      }
      return OkStatus();
    case OrderingInputKind::kGraph:
      if (graph == nullptr) {
        return InvalidArgumentError("kGraph request carries no graph");
      }
      if (!affinity_edges.empty()) {
        return InvalidArgumentError(
            "kGraph request must not carry affinity edges (merge them into "
            "the graph)");
      }
      if (points != nullptr && points->size() != graph->num_vertices()) {
        return InvalidArgumentError(
            "kGraph canonicalization points disagree with the graph on the "
            "number of vertices");
      }
      return OkStatus();
  }
  return InvalidArgumentError("unknown ordering input kind");
}

Fingerprint128 OrderingRequest::Fingerprint() const {
  Hasher h;
  h.MixString(engine).MixEnum(input);
  h.MixBool(points != nullptr);
  if (points != nullptr) HashPointSet(h, *points);
  h.MixBool(graph != nullptr);
  if (graph != nullptr) HashGraph(h, *graph);
  HashEdges(h, affinity_edges);
  HashEngineOptions(h, engine, options);
  return h.Finish();
}

int64_t OrderingRequest::InputSize() const {
  if (input == OrderingInputKind::kGraph) {
    return graph == nullptr ? 0 : graph->num_vertices();
  }
  return points == nullptr ? 0 : points->size();
}

}  // namespace spectral
