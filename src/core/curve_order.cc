#include "core/curve_order.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace spectral {

namespace {

// Smallest legal enclosing grid for a bounding box [lo, hi]. Per-axis
// extents keep rectangles exact for sweep/snake/spiral and let peano pad
// each axis independently; the power-of-two families still round the
// largest extent up to a hyper-cube.
StatusOr<GridSpec> GridForBounds(CurveKind kind, int dims,
                                 const std::vector<Coord>& lo,
                                 const std::vector<Coord>& hi) {
  std::vector<Coord> extents(static_cast<size_t>(dims));
  for (int a = 0; a < dims; ++a) {
    extents[static_cast<size_t>(a)] =
        static_cast<Coord>(hi[static_cast<size_t>(a)] -
                           lo[static_cast<size_t>(a)] + 1);
  }
  return EnclosingGridForExtents(kind, extents);
}

}  // namespace

StatusOr<LinearOrder> OrderByCurve(const PointSet& points, CurveKind kind,
                                   GridSpec* grid_used) {
  if (points.empty()) {
    return InvalidArgumentError("cannot order an empty point set");
  }
  std::vector<Coord> lo, hi;
  points.Bounds(&lo, &hi);
  auto grid = GridForBounds(kind, points.dims(), lo, hi);
  if (!grid.ok()) return grid.status();
  auto curve = MakeCurve(kind, *grid);
  if (!curve.ok()) return curve.status();

  std::vector<uint64_t> keys(static_cast<size_t>(points.size()));
  std::vector<Coord> shifted(static_cast<size_t>(points.dims()));
  for (int64_t i = 0; i < points.size(); ++i) {
    const auto p = points[i];
    for (int a = 0; a < points.dims(); ++a) {
      shifted[static_cast<size_t>(a)] =
          p[static_cast<size_t>(a)] - lo[static_cast<size_t>(a)];
    }
    keys[static_cast<size_t>(i)] = (*curve)->IndexOf(shifted);
  }
  if (grid_used != nullptr) *grid_used = *grid;
  return LinearOrder::FromKeys(keys);
}

StatusOr<LinearOrder> OrderByCurveOnGrid(const PointSet& points,
                                         const SpaceFillingCurve& curve) {
  if (points.empty()) {
    return InvalidArgumentError("cannot order an empty point set");
  }
  if (points.dims() != curve.dims()) {
    return InvalidArgumentError("point set and curve dimension mismatch");
  }
  std::vector<uint64_t> keys(static_cast<size_t>(points.size()));
  for (int64_t i = 0; i < points.size(); ++i) {
    if (!curve.grid().Contains(points[i])) {
      return InvalidArgumentError("point outside the curve grid");
    }
    keys[static_cast<size_t>(i)] = curve.IndexOf(points[i]);
  }
  return LinearOrder::FromKeys(keys);
}

}  // namespace spectral
