// LinearOrder: the output "S" of the paper's algorithm — a permutation of a
// point set giving each point a one-dimensional position (rank). Both the
// spectral mapper and the curve-based baselines produce this type, so every
// metric and application downstream is mapping-agnostic.

#ifndef SPECTRAL_LPM_CORE_LINEAR_ORDER_H_
#define SPECTRAL_LPM_CORE_LINEAR_ORDER_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "space/point_set.h"
#include "util/status.h"

namespace spectral {

/// Bijection between point indices and ranks [0, n).
class LinearOrder {
 public:
  LinearOrder() = default;

  /// Builds from point_to_rank; fails unless it is a permutation of [0, n).
  static StatusOr<LinearOrder> FromRanks(std::vector<int64_t> point_to_rank);

  /// Ranks points by ascending value; ties broken by point index, which
  /// keeps results deterministic (step 5 of the paper's pseudo code applied
  /// to the Fiedler components).
  static LinearOrder FromValues(std::span<const double> values);

  /// Ranks points by ascending integer key (e.g. curve indices); ties broken
  /// by point index.
  static LinearOrder FromKeys(std::span<const uint64_t> keys);

  /// Identity order (rank == point index).
  static LinearOrder Identity(int64_t n);

  int64_t size() const { return static_cast<int64_t>(point_to_rank_.size()); }

  /// Rank of point `i`.
  int64_t RankOf(int64_t i) const;

  /// Point at rank `r` (inverse permutation).
  int64_t PointAtRank(int64_t r) const;

  /// Reversed order (rank r -> n-1-r); the mapping quality metrics of the
  /// paper are invariant under reversal.
  LinearOrder Reversed() const;

  /// The paper's Theorem-1 objective evaluated on integer ranks:
  /// sum over edges of w_uv * (rank_u - rank_v)^2.
  double SquaredArrangementCost(const Graph& g) const;

  /// Minimum-linear-arrangement style cost: sum of w_uv * |rank_u - rank_v|.
  double LinearArrangementCost(const Graph& g) const;

  /// Renders a 2-d order as a grid of ranks (for examples and debugging).
  /// Requires `points` to be 2-d; missing cells print as dots.
  std::string ToGridString(const PointSet& points) const;

 private:
  std::vector<int64_t> point_to_rank_;
  std::vector<int64_t> rank_to_point_;

  void BuildInverse();
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_CORE_LINEAR_ORDER_H_
