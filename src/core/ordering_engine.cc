#include "core/ordering_engine.h"

#include <algorithm>
#include <utility>

#include "core/curve_order.h"
#include "util/string_util.h"

namespace spectral {

StatusOr<OrderingResult> OrderingEngine::OrderGraph(const Graph& graph,
                                                    const PointSet* points) const {
  (void)graph;
  (void)points;
  return UnimplementedError("engine '" + std::string(name()) +
                            "' does not accept graph input");
}

namespace {

constexpr std::string_view kSpectralName = "spectral";
constexpr std::string_view kSpectralMultilevelName = "spectral-multilevel";
constexpr std::string_view kBisectionName = "bisection";

OrderingResult FromSpectralResult(SpectralLpmResult result) {
  OrderingResult out;
  out.order = std::move(result.order);
  out.method = result.method_used;
  out.lambda2 = result.lambda2;
  out.num_components = result.num_components;
  out.matvecs = result.matvecs;
  out.embedding = std::move(result.values);
  out.detail = "engine=" + out.method +
               " lambda2=" + FormatDouble(out.lambda2) +
               " components=" + FormatInt(out.num_components);
  return out;
}

/// "spectral" and "spectral-multilevel": direct Fiedler-order adapters over
/// SpectralMapper.
class SpectralEngine : public OrderingEngine {
 public:
  SpectralEngine(std::string_view name, SpectralLpmOptions options)
      : name_(name), mapper_(std::move(options)) {}

  std::string_view name() const override { return name_; }
  bool supports_graph_input() const override { return true; }

  StatusOr<OrderingResult> Order(const PointSet& points) const override {
    auto result = mapper_.Map(points);
    if (!result.ok()) return result.status();
    return FromSpectralResult(std::move(*result));
  }

  StatusOr<OrderingResult> OrderGraph(const Graph& graph,
                                      const PointSet* points) const override {
    auto result = mapper_.MapGraph(graph, points);
    if (!result.ok()) return result.status();
    return FromSpectralResult(std::move(*result));
  }

 private:
  std::string_view name_;
  SpectralMapper mapper_;
};

/// "bisection": recursive spectral median-cut adapter.
class BisectionEngine : public OrderingEngine {
 public:
  explicit BisectionEngine(RecursiveBisectionOptions options)
      : options_(std::move(options)) {}

  std::string_view name() const override { return kBisectionName; }
  bool supports_graph_input() const override { return true; }

  StatusOr<OrderingResult> Order(const PointSet& points) const override {
    auto result = RecursiveSpectralOrder(points, options_);
    if (!result.ok()) return result.status();
    return FromBisectionResult(std::move(*result));
  }

  StatusOr<OrderingResult> OrderGraph(const Graph& graph,
                                      const PointSet* points) const override {
    auto result = RecursiveSpectralOrderGraph(graph, points, options_);
    if (!result.ok()) return result.status();
    return FromBisectionResult(std::move(*result));
  }

 private:
  static OrderingResult FromBisectionResult(RecursiveBisectionResult result) {
    OrderingResult out;
    out.order = std::move(result.order);
    out.method = "median-cut";
    out.num_solves = result.num_solves;
    out.depth = result.depth;
    out.detail = "solves=" + FormatInt(result.num_solves) +
                 " depth=" + FormatInt(result.depth);
    return out;
  }

  RecursiveBisectionOptions options_;
};

/// Curve-family adapter: orders by curve index on the smallest legal
/// enclosing grid, reporting the padding in the diagnostics.
class CurveEngine : public OrderingEngine {
 public:
  explicit CurveEngine(CurveKind kind) : kind_(kind) {}

  std::string_view name() const override { return CurveKindName(kind_); }

  StatusOr<OrderingResult> Order(const PointSet& points) const override {
    auto grid = CurveEnclosingGrid(points, kind_);
    if (!grid.ok()) return grid.status();
    auto order = OrderByCurve(points, kind_);
    if (!order.ok()) return order.status();

    OrderingResult out;
    out.order = std::move(*order);
    out.method = std::string(CurveKindName(kind_));
    out.grid_side = grid->side(0);
    out.grid_cells = grid->NumCells();
    out.detail = "grid_side=" + FormatInt(out.grid_side) +
                 " grid_cells=" + FormatInt(out.grid_cells);
    return out;
  }

 private:
  CurveKind kind_;
};

}  // namespace

std::vector<std::string> AllOrderingEngineNames() {
  std::vector<std::string> names = {std::string(kSpectralName),
                                    std::string(kSpectralMultilevelName),
                                    std::string(kBisectionName)};
  for (CurveKind kind : AllCurveKinds()) {
    names.emplace_back(CurveKindName(kind));
  }
  return names;
}

StatusOr<std::unique_ptr<OrderingEngine>> MakeOrderingEngine(
    std::string_view name, const OrderingEngineOptions& options) {
  if (name == kSpectralName) {
    return std::unique_ptr<OrderingEngine>(
        new SpectralEngine(kSpectralName, options.spectral));
  }
  if (name == kSpectralMultilevelName) {
    SpectralLpmOptions spectral = options.spectral;
    if (spectral.multilevel_threshold <= 0) {
      spectral.multilevel_threshold = options.multilevel_default_threshold;
    }
    return std::unique_ptr<OrderingEngine>(
        new SpectralEngine(kSpectralMultilevelName, std::move(spectral)));
  }
  if (name == kBisectionName) {
    RecursiveBisectionOptions bisection = options.bisection;
    bisection.base = options.spectral;
    return std::unique_ptr<OrderingEngine>(
        new BisectionEngine(std::move(bisection)));
  }
  auto kind = CurveKindFromName(name);
  if (kind.ok()) {
    return std::unique_ptr<OrderingEngine>(new CurveEngine(*kind));
  }
  return NotFoundError("unknown ordering engine '" + std::string(name) +
                       "'; known engines: " +
                       StrJoin(AllOrderingEngineNames(), ", "));
}

}  // namespace spectral
