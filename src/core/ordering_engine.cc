#include "core/ordering_engine.h"

#include <algorithm>
#include <utility>

#include "core/curve_order.h"
#include "core/recursive_bisection.h"
#include "core/sharded_engine.h"
#include "core/spectral_lpm.h"
#include "util/string_util.h"

namespace spectral {

namespace {

constexpr std::string_view kSpectralName = "spectral";
constexpr std::string_view kSpectralMultilevelName = "spectral-multilevel";
constexpr std::string_view kBisectionName = "bisection";

// Shared preamble: structural validity plus the addressing check that keeps
// MappingService routing and cache keys honest.
Status CheckRequest(const OrderingRequest& request, std::string_view engine) {
  if (Status s = request.Validate(); !s.ok()) return s;
  if (request.engine != engine) {
    return InvalidArgumentError("request addressed to engine '" +
                                request.engine + "' given to engine '" +
                                std::string(engine) + "'");
  }
  return OkStatus();
}

// The spectral configuration a request resolves to: the request's affinity
// edges are appended to any configured ones, and the multilevel engine
// applies its default threshold when the request leaves it unset.
SpectralLpmOptions EffectiveSpectralOptions(const OrderingRequest& request,
                                            bool multilevel_engine) {
  SpectralLpmOptions spectral = request.options.spectral;
  if (multilevel_engine && spectral.multilevel_threshold <= 0) {
    spectral.multilevel_threshold = request.options.multilevel_default_threshold;
  }
  spectral.affinity_edges.insert(spectral.affinity_edges.end(),
                                 request.affinity_edges.begin(),
                                 request.affinity_edges.end());
  return spectral;
}

OrderingResult FromSpectralResult(SpectralLpmResult result) {
  OrderingResult out;
  out.order = std::move(result.order);
  out.method = result.method_used;
  out.lambda2 = result.lambda2;
  out.num_components = result.num_components;
  out.matvecs = result.matvecs;
  out.restarts = result.restarts;
  out.spmm_calls = result.spmm_calls;
  out.reorth_panels = result.reorth_panels;
  out.profile = result.profile;
  out.embedding = std::move(result.values);
  out.converged = result.converged;
  // Only the deterministic flop estimates go into detail (it is compared
  // byte-for-byte by caching/sharding layers); wall times stay in
  // `profile` for --profile output and bench share rows.
  out.detail = "engine=" + out.method +
               " lambda2=" + FormatDouble(out.lambda2) +
               " components=" + FormatInt(out.num_components) +
               " matvecs=" + FormatInt(out.matvecs) +
               " restarts=" + FormatInt(out.restarts) +
               " spmm=" + FormatInt(out.spmm_calls) +
               " reorth_panels=" + FormatInt(out.reorth_panels) +
               " flops=" + FormatInt(out.profile.spmm_flops) + "/" +
               FormatInt(out.profile.reorth_flops) + "/" +
               FormatInt(out.profile.hfill_flops) + "/" +
               FormatInt(out.profile.rr_flops) + "/" +
               FormatInt(out.profile.cheb_flops) +
               " converged=" + (out.converged ? "1" : "0");
  return out;
}

/// "spectral" and "spectral-multilevel": direct Fiedler-order adapters over
/// SpectralMapper.
class SpectralEngine : public OrderingEngine {
 public:
  explicit SpectralEngine(bool multilevel)
      : name_(multilevel ? kSpectralMultilevelName : kSpectralName),
        multilevel_(multilevel) {}

  std::string_view name() const override { return name_; }
  bool supports_graph_input() const override { return true; }

  StatusOr<OrderingResult> Order(const OrderingRequest& request) const override {
    if (Status s = CheckRequest(request, name_); !s.ok()) return s;
    const SpectralMapper mapper(EffectiveSpectralOptions(request, multilevel_));
    auto result = request.input == OrderingInputKind::kGraph
                      ? mapper.MapGraph(*request.graph, request.points.get())
                      : mapper.Map(*request.points);
    if (!result.ok()) return result.status();
    return FromSpectralResult(std::move(*result));
  }

 private:
  std::string_view name_;
  bool multilevel_;
};

/// "bisection": recursive spectral median-cut adapter.
class BisectionEngine : public OrderingEngine {
 public:
  std::string_view name() const override { return kBisectionName; }
  bool supports_graph_input() const override { return true; }

  StatusOr<OrderingResult> Order(const OrderingRequest& request) const override {
    if (Status s = CheckRequest(request, kBisectionName); !s.ok()) return s;
    RecursiveBisectionOptions options = request.options.bisection;
    options.base = EffectiveSpectralOptions(request, /*multilevel_engine=*/false);
    auto result =
        request.input == OrderingInputKind::kGraph
            ? RecursiveSpectralOrderGraph(*request.graph, request.points.get(),
                                          options)
            : RecursiveSpectralOrder(*request.points, options);
    if (!result.ok()) return result.status();

    OrderingResult out;
    out.order = std::move(result->order);
    out.method = "median-cut";
    out.num_solves = result->num_solves;
    out.matvecs = result->matvecs;
    out.depth = result->depth;
    out.detail = "solves=" + FormatInt(out.num_solves) +
                 " warm_solves=" + FormatInt(result->warm_solves) +
                 " matvecs=" + FormatInt(out.matvecs) +
                 " depth=" + FormatInt(out.depth);
    return out;
  }
};

/// Curve-family adapter: orders by curve index on the smallest legal
/// enclosing grid, reporting the padding in the diagnostics.
class CurveEngine : public OrderingEngine {
 public:
  explicit CurveEngine(CurveKind kind) : kind_(kind) {}

  std::string_view name() const override { return CurveKindName(kind_); }

  StatusOr<OrderingResult> Order(const OrderingRequest& request) const override {
    if (Status s = CheckRequest(request, name()); !s.ok()) return s;
    if (request.input != OrderingInputKind::kPoints) {
      return UnimplementedError(
          "engine '" + std::string(name()) +
          "' is geometry-only: it accepts kPoints requests, not graphs or "
          "affinity edges");
    }
    GridSpec grid = GridSpec::Uniform(1, 1);
    auto order = OrderByCurve(*request.points, kind_, &grid);
    if (!order.ok()) return order.status();

    OrderingResult out;
    out.order = std::move(*order);
    out.method = std::string(CurveKindName(kind_));
    out.grid_side = grid.side(0);
    out.grid_cells = grid.NumCells();
    out.detail = "grid_side=" + FormatInt(out.grid_side) +
                 " grid_cells=" + FormatInt(out.grid_cells);
    return out;
  }

 private:
  CurveKind kind_;
};

}  // namespace

std::vector<std::string> AllOrderingEngineNames() {
  std::vector<std::string> names = {std::string(kSpectralName),
                                    std::string(kSpectralMultilevelName),
                                    std::string(kShardedSpectralEngineName),
                                    std::string(kBisectionName)};
  for (CurveKind kind : AllCurveKinds()) {
    names.emplace_back(CurveKindName(kind));
  }
  return names;
}

StatusOr<std::unique_ptr<OrderingEngine>> MakeOrderingEngine(
    std::string_view name) {
  if (name == kSpectralName) {
    return std::unique_ptr<OrderingEngine>(
        new SpectralEngine(/*multilevel=*/false));
  }
  if (name == kSpectralMultilevelName) {
    return std::unique_ptr<OrderingEngine>(
        new SpectralEngine(/*multilevel=*/true));
  }
  if (name == kShardedSpectralEngineName) {
    return MakeShardedSpectralEngine();
  }
  if (name == kBisectionName) {
    return std::unique_ptr<OrderingEngine>(new BisectionEngine());
  }
  auto kind = CurveKindFromName(name);
  if (kind.ok()) {
    return std::unique_ptr<OrderingEngine>(new CurveEngine(*kind));
  }
  return NotFoundError("unknown ordering engine '" + std::string(name) +
                       "'; known engines: " +
                       StrJoin(AllOrderingEngineNames(), ", "));
}

}  // namespace spectral
