// "sharded-spectral": the scaling path for requests bigger than one
// eigensolve can handle. The request's graph is partitioned into K shards,
// each shard's spectral order is solved concurrently as its own real
// "spectral" OrderingRequest (so MappingService's fingerprint cache
// deduplicates repeated shards and coarse solves), and the shard orders
// are stitched into one global order:
//
//   1. Partition: coarsen the graph by heavy-edge matching to a small
//      multiple of K (graph/partition.h), spectral-order the coarse graph
//      (one cheap solve), and cut that order into K mass-balanced chunks —
//      each chunk's fine vertices form a shard.
//   2. Solve: per-shard induced subgraphs (graph/subgraph.h) become kGraph
//      sub-requests; shard point subsets are translated to the origin so
//      geometrically identical shards share one fingerprint. Sub-requests
//      run through the routing MappingService when one is attached to the
//      request (OrderingEngineOptions::service), otherwise concurrently on
//      a local pool — byte-identical either way.
//   3. Stitch: the shards are ordered by the spectral order of the
//      shard-contraction graph (quotient of the cut, shard centroids as
//      canonicalization points), and each shard keeps or reverses its
//      local order by a closed-form choice that minimizes the summed
//      cut-edge rank span.
//
// K = 1 delegates to the monolithic "spectral" engine byte-for-byte, which
// is the engine's correctness anchor (tests/sharded_engine_test.cc); for
// K > 1 the order is near-spectral (Spearman vs. the monolithic order
// tracked in bench_ordering_engines) at a fraction of the wall-clock.
//
// Fidelity caveat: when the input's Fiedler direction is (near-)degenerate
// — an exactly square grid, a perfectly round blob — the *direction* the
// monolithic order runs in is a canonicalization convention, and the
// coarsened cut graph (whose matching breaks the symmetry by construction)
// can legitimately settle on a different direction or orientation. The
// sharded order is then an equally-optimal spectral order whose rank
// correlation against the monolithic convention is structurally low. On
// data with a dominant direction (rectangles, elongated point clouds —
// the regime where sharding a huge request matters) the stitched order
// tracks the monolithic one at Spearman >= 0.95 for K up to 8.

#ifndef SPECTRAL_LPM_CORE_SHARDED_ENGINE_H_
#define SPECTRAL_LPM_CORE_SHARDED_ENGINE_H_

#include <memory>
#include <string_view>

#include "core/ordering_engine.h"

namespace spectral {

inline constexpr std::string_view kShardedSpectralEngineName =
    "sharded-spectral";

/// Constructs the sharded engine (registry backend of
/// MakeOrderingEngine("sharded-spectral")).
std::unique_ptr<OrderingEngine> MakeShardedSpectralEngine();

}  // namespace spectral

#endif  // SPECTRAL_LPM_CORE_SHARDED_ENGINE_H_
