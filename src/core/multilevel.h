// Multilevel Fiedler solver: coarsen the graph by heavy-edge matching until
// it is small, solve the coarsest eigenproblem exactly, then prolong and
// refine level by level with warm-started Lanczos. This is the standard
// V-cycle used by production spectral-ordering codes; it cuts the matvec
// count dramatically on large instances (see bench_multilevel).

#ifndef SPECTRAL_LPM_CORE_MULTILEVEL_H_
#define SPECTRAL_LPM_CORE_MULTILEVEL_H_

#include <cstdint>

#include "eigen/fiedler.h"
#include "graph/graph.h"
#include "util/status.h"

namespace spectral {

/// Options for ComputeFiedlerMultilevel.
struct MultilevelOptions {
  /// Stop coarsening at or below this many vertices and solve directly.
  int64_t coarsest_size = 96;
  /// Also stop if a level shrinks by less than this factor (matching
  /// stalls on star-like graphs).
  double min_shrink_factor = 0.9;
  int max_levels = 40;
  /// Solver used on the coarsest level and for refinement tolerances.
  FiedlerOptions fiedler;
  /// Lanczos budget per refinement level (warm-started, so small).
  int refine_max_basis = 40;
  int refine_max_restarts = 60;
};

/// Computes the Fiedler pair of a *connected* graph's Laplacian through a
/// coarsen-solve-refine cycle. Returns the same FiedlerResult contract as
/// ComputeFiedler, with matvecs counting all refinement work. Degeneracy
/// canonicalization happens only at the coarsest level, so on symmetric
/// inputs the returned vector is one valid member of the eigenspace.
StatusOr<FiedlerResult> ComputeFiedlerMultilevel(
    const Graph& graph, const MultilevelOptions& options = {});

}  // namespace spectral

#endif  // SPECTRAL_LPM_CORE_MULTILEVEL_H_
