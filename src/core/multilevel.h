// Multilevel Fiedler solver: coarsen the graph by heavy-edge matching
// (graph/coarsening.h's BuildCoarseningHierarchy — the same hierarchy build
// the exact solver's warm start uses), dense-solve the coarsest Laplacian,
// prolong + Jacobi-smooth the eigenvector *block* up the hierarchy with a
// loose-tolerance polish per level (eigen/warm_start.h), then polish the
// finest level to full accuracy with the warm-started block Lanczos solver
// (eigen/block_lanczos.h via ComputeFiedler).
//
// Because the finest solve converges to the same tolerance as the flat
// solver and tracks the whole num_pairs block, degenerate-eigenspace
// canonicalization works here too: pass the centered axis functions and a
// square grid gets the same axis-fair balanced-mix Fiedler vector — and
// therefore the same order — as the flat engine. (The previous V-cycle
// tracked a single eigenpair, so on square grids it silently returned an
// axis-aligned member of the degenerate eigenspace and the resulting order
// collapsed to a sweep; see tests/multilevel_test.cc's regression test.)

#ifndef SPECTRAL_LPM_CORE_MULTILEVEL_H_
#define SPECTRAL_LPM_CORE_MULTILEVEL_H_

#include <cstdint>
#include <span>

#include "eigen/fiedler.h"
#include "eigen/warm_start.h"
#include "graph/coarsening.h"
#include "graph/graph.h"
#include "util/status.h"

namespace spectral {

/// Options for ComputeFiedlerMultilevel.
struct MultilevelOptions {
  /// Hierarchy shape (stop size, stall detection, level cap).
  CoarseningOptions coarsen;
  /// Finest-level solve configuration: tolerance, num_pairs, degeneracy
  /// policy, worker pool. The multilevel cascade only manufactures the
  /// warm start; this governs the accuracy of the answer.
  FiedlerOptions fiedler;
  /// Weighted-Jacobi smoothing steps after each prolongation.
  int smooth_steps = 2;
  double jacobi_omega = 2.0 / 3.0;
  /// Adaptive tolerance: intermediate levels only warm-start the next
  /// finer level, so their (optional) polish solves stop at this loose
  /// residual. level_max_restarts = 0 skips the polish entirely and
  /// ascends on smoothing alone — the default; see WarmStartOptions.
  double level_tol = 1e-4;
  int level_max_basis = 24;
  int level_max_restarts = 0;
};

/// Computes the Fiedler pair of a *connected* graph's Laplacian through the
/// coarsen-solve-refine cascade. Same FiedlerResult contract as
/// ComputeFiedler (matvecs/restarts count all levels' work); with
/// `canonical_axes` the degenerate-eigenspace canonicalization matches the
/// flat solver's.
StatusOr<FiedlerResult> ComputeFiedlerMultilevel(
    const Graph& graph, const MultilevelOptions& options = {},
    std::span<const Vector> canonical_axes = {});

}  // namespace spectral

#endif  // SPECTRAL_LPM_CORE_MULTILEVEL_H_
