#include "core/spectral_lpm.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "eigen/operator.h"
#include "graph/laplacian.h"
#include "graph/traversal.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace spectral {

SpectralMapper::SpectralMapper(SpectralLpmOptions options)
    : options_(std::move(options)) {}

StatusOr<SpectralLpmResult> SpectralMapper::Map(const PointSet& points) const {
  if (points.empty()) {
    return InvalidArgumentError("cannot map an empty point set");
  }
  auto graph = BuildPointGraph(points, options_.graph);
  if (!graph.ok()) return graph.status();

  if (options_.affinity_edges.empty()) {
    return MapGraph(*graph, &points);
  }
  // Merge the neighborhood edges with the user's affinity edges.
  std::vector<GraphEdge> edges;
  edges.reserve(static_cast<size_t>(graph->num_edges()) +
                options_.affinity_edges.size());
  graph->ForEachEdge([&](int64_t u, int64_t v, double w) {
    edges.push_back({u, v, w});
  });
  for (const GraphEdge& e : options_.affinity_edges) {
    if (e.u < 0 || e.u >= points.size() || e.v < 0 || e.v >= points.size()) {
      return InvalidArgumentError("affinity edge endpoint out of range");
    }
    if (e.u == e.v) {
      return InvalidArgumentError("affinity edge endpoints must differ");
    }
    if (e.weight <= 0.0) {
      return InvalidArgumentError("affinity edge weight must be positive");
    }
    edges.push_back(e);
  }
  const Graph merged = Graph::FromEdges(points.size(), edges);
  return MapGraph(merged, &points);
}

StatusOr<SpectralLpmResult> SpectralMapper::MapGraph(
    const Graph& graph, const PointSet* points) const {
  const int64_t n = graph.num_vertices();
  if (n == 0) return InvalidArgumentError("cannot map an empty graph");
  if (points != nullptr) {
    SPECTRAL_CHECK_EQ(points->size(), n)
        << "point set and graph disagree on the number of vertices";
  }

  int64_t num_components = 0;
  const std::vector<int64_t> comp = ConnectedComponents(graph, &num_components);

  // Vertices per component.
  std::vector<std::vector<int64_t>> members(
      static_cast<size_t>(num_components));
  for (int64_t v = 0; v < n; ++v) {
    members[static_cast<size_t>(comp[static_cast<size_t>(v)])].push_back(v);
  }
  // Edges per component, in local vertex ids.
  std::vector<int64_t> local(static_cast<size_t>(n), -1);
  for (size_t c = 0; c < members.size(); ++c) {
    for (size_t k = 0; k < members[c].size(); ++k) {
      local[static_cast<size_t>(members[c][k])] = static_cast<int64_t>(k);
    }
  }
  std::vector<std::vector<GraphEdge>> comp_edges(
      static_cast<size_t>(num_components));
  graph.ForEachEdge([&](int64_t u, int64_t v, double w) {
    const int64_t c = comp[static_cast<size_t>(u)];
    comp_edges[static_cast<size_t>(c)].push_back(
        {local[static_cast<size_t>(u)], local[static_cast<size_t>(v)], w});
  });

  // Component processing order: largest first, ties by lowest vertex id
  // (members[c] is ascending by construction).
  std::vector<int64_t> comp_order(static_cast<size_t>(num_components));
  std::iota(comp_order.begin(), comp_order.end(), 0);
  std::sort(comp_order.begin(), comp_order.end(), [&](int64_t a, int64_t b) {
    const size_t sa = members[static_cast<size_t>(a)].size();
    const size_t sb = members[static_cast<size_t>(b)].size();
    if (sa != sb) return sa > sb;
    return members[static_cast<size_t>(a)][0] < members[static_cast<size_t>(b)][0];
  });

  // Per-component eigensolves. Components are independent Fiedler problems,
  // so they run concurrently on a pool (fed largest-first: the biggest solve
  // dominates the critical path); large single components instead gain from
  // row-partitioned matvecs inside Lanczos. Every solve is deterministic and
  // the concatenation below walks comp_order serially, so the result does
  // not depend on the thread count.
  struct ComponentSolve {
    Status status;
    Vector values;
    double lambda2 = 0.0;
    int64_t matvecs = 0;
    int64_t restarts = 0;
    int64_t spmm_calls = 0;
    int64_t reorth_panels = 0;
    KernelProfile profile;
    std::string method_used;
    bool solved = false;  // true iff the component needed an eigensolve
    bool converged = true;
  };
  std::vector<ComponentSolve> solves(static_cast<size_t>(num_components));

  // An external pool (options_.pool) is used as-is: the caller — typically
  // MappingService fanning a batch out — already sized it, and sharing it
  // avoids nesting one pool per request. Otherwise spawn our own, but only
  // when there is concurrent work: more than one component, or a single
  // component big enough for SparseOperator to row-partition its matvecs.
  ThreadPool* pool = options_.pool;
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr) {
    int threads = options_.parallelism;
    if (threads <= 0) threads = ThreadPool::DefaultThreads();
    const int64_t largest_component = static_cast<int64_t>(
        members[static_cast<size_t>(comp_order[0])].size());
    if (threads > 1 &&
        (num_components > 1 || largest_component >= kDefaultMinParallelRows)) {
      owned_pool = std::make_unique<ThreadPool>(threads);
      pool = owned_pool.get();
    }
  }

  auto solve_component = [&](int64_t c) {
    ComponentSolve& out = solves[static_cast<size_t>(c)];
    const auto& verts = members[static_cast<size_t>(c)];
    const int64_t m = static_cast<int64_t>(verts.size());
    out.values.assign(static_cast<size_t>(m), 0.0);
    if (m <= 1) return;

    const Graph sub = Graph::FromEdges(m, comp_edges[static_cast<size_t>(c)]);
    // Warm-started multilevel path for big components (either threshold):
    // one hierarchy build feeds the coarsest dense solve, the
    // prolong/smooth ascent, and the full-accuracy fine block solve, so
    // the exact engine converges at near-multilevel speed with the same
    // order as a cold solve. warm_start_threshold only auto-triggers when
    // the fine solve would take the block path anyway; an explicitly
    // forced kDense/kLanczos stays flat (those are the reference engines).
    const bool block_capable =
        options_.fiedler.method == FiedlerMethod::kBlockLanczos ||
        (options_.fiedler.method == FiedlerMethod::kAuto &&
         m > options_.fiedler.dense_threshold);
    const bool use_warm =
        (options_.multilevel_threshold > 0 &&
         m >= options_.multilevel_threshold) ||
        (block_capable && options_.warm_start_threshold > 0 &&
         m >= options_.warm_start_threshold);
    std::vector<Vector> axes;
    if (points != nullptr && options_.canonicalize_with_axes) {
      PointSet sub_points(points->dims());
      for (int64_t v : verts) sub_points.Add((*points)[v]);
      axes = sub_points.CenteredAxisFunctions();
    }
    FiedlerOptions fiedler_options = options_.fiedler;
    fiedler_options.matvec_pool = pool;
    StatusOr<FiedlerResult> fiedler = [&]() -> StatusOr<FiedlerResult> {
      if (use_warm) {
        MultilevelOptions multilevel = options_.multilevel;
        multilevel.fiedler = fiedler_options;
        return ComputeFiedlerMultilevel(sub, multilevel, axes);
      }
      return ComputeFiedler(BuildLaplacian(sub), fiedler_options, axes);
    }();
    if (!fiedler.ok()) {
      out.status = fiedler.status();
      return;
    }
    out.values = fiedler->fiedler;
    out.lambda2 = fiedler->lambda2;
    out.matvecs = fiedler->matvecs;
    out.restarts = fiedler->restarts;
    out.spmm_calls = fiedler->spmm_calls;
    out.reorth_panels = fiedler->reorth_panels;
    out.profile = fiedler->profile;
    out.method_used = fiedler->method_used;
    out.converged = fiedler->converged;
    // An injected solver fault demotes this solve to "unconverged" without
    // touching its (fully converged) values: downstream sees exactly what a
    // real stall would produce — a usable order flagged as best-effort.
    if (FaultFires(options_.faults, "solver.converge")) {
      out.converged = false;
    }
    out.solved = true;
  };

  if (pool != nullptr) {
    // ParallelFor (not Submit + WaitIdle) so this stays deadlock-free when
    // the mapper itself runs inside a task of an external pool: the caller
    // participates in draining chunks. The atomic cursor walks comp_order,
    // preserving the largest-first schedule.
    pool->ParallelFor(0, num_components, 1, [&](int64_t i) {
      solve_component(comp_order[static_cast<size_t>(i)]);
    });
  } else {
    for (int64_t c : comp_order) solve_component(c);
  }
  for (int64_t c : comp_order) {
    if (!solves[static_cast<size_t>(c)].status.ok()) {
      return solves[static_cast<size_t>(c)].status;
    }
  }

  SpectralLpmResult result;
  result.num_components = num_components;
  result.values.assign(static_cast<size_t>(n), 0.0);
  std::vector<int64_t> ranks(static_cast<size_t>(n), -1);
  int64_t next_rank = 0;
  bool recorded_main = false;

  for (int64_t c : comp_order) {
    const auto& verts = members[static_cast<size_t>(c)];
    const int64_t m = static_cast<int64_t>(verts.size());
    ComponentSolve& solve = solves[static_cast<size_t>(c)];
    Vector& values = solve.values;

    if (solve.solved) {
      result.matvecs += solve.matvecs;
      result.restarts += solve.restarts;
      result.spmm_calls += solve.spmm_calls;
      result.reorth_panels += solve.reorth_panels;
      result.profile.Add(solve.profile);
      result.converged = result.converged && solve.converged;
      if (!recorded_main) {
        result.lambda2 = solve.lambda2;
        result.method_used = solve.method_used;
        recorded_main = true;
      }
    }

    // Step 5: order by Fiedler component. Components are quantized first so
    // exact eigenvector ties (grid eigenvectors are constant along whole
    // slices) resolve by point index, not by solver-specific noise.
    double quantum = 0.0;
    if (options_.rank_quantum_rel > 0.0) {
      quantum = options_.rank_quantum_rel * NormInf(values);
    }
    auto key_of = [&](int64_t a) -> int64_t {
      const double v = values[static_cast<size_t>(a)];
      return quantum > 0.0
                 ? static_cast<int64_t>(std::llround(v / quantum))
                 : 0;
    };
    std::vector<int64_t> by_value(static_cast<size_t>(m));
    std::iota(by_value.begin(), by_value.end(), 0);
    std::sort(by_value.begin(), by_value.end(), [&](int64_t a, int64_t b) {
      const int64_t ka = key_of(a);
      const int64_t kb = key_of(b);
      if (ka != kb) return ka < kb;
      if (quantum == 0.0) {
        const double va = values[static_cast<size_t>(a)];
        const double vb = values[static_cast<size_t>(b)];
        if (va != vb) return va < vb;
      }
      return verts[static_cast<size_t>(a)] < verts[static_cast<size_t>(b)];
    });
    for (int64_t k = 0; k < m; ++k) {
      const int64_t v = verts[static_cast<size_t>(by_value[static_cast<size_t>(k)])];
      ranks[static_cast<size_t>(v)] = next_rank++;
      result.values[static_cast<size_t>(v)] =
          values[static_cast<size_t>(by_value[static_cast<size_t>(k)])];
    }
  }
  SPECTRAL_CHECK_EQ(next_rank, n);
  if (!recorded_main) result.method_used = "trivial";

  auto order = LinearOrder::FromRanks(std::move(ranks));
  if (!order.ok()) return order.status();
  result.order = std::move(*order);
  return result;
}

}  // namespace spectral
