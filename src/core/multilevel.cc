#include "core/multilevel.h"

#include <cmath>

#include "eigen/lanczos.h"
#include "eigen/operator.h"
#include "graph/coarsening.h"
#include "graph/laplacian.h"
#include "graph/traversal.h"
#include "util/check.h"

namespace spectral {

StatusOr<FiedlerResult> ComputeFiedlerMultilevel(
    const Graph& graph, const MultilevelOptions& options) {
  const int64_t n = graph.num_vertices();
  if (n < 2) {
    return InvalidArgumentError("multilevel Fiedler needs >= 2 vertices");
  }
  if (!IsConnected(graph)) {
    return FailedPreconditionError(
        "multilevel Fiedler requires a connected graph");
  }
  SPECTRAL_CHECK_GE(options.coarsest_size, 2);

  // Coarsening cascade. levels[0] is the input; coarsenings[k] maps
  // levels[k] -> levels[k+1].
  std::vector<Graph> levels;
  std::vector<Coarsening> coarsenings;
  levels.push_back(graph);
  while (static_cast<int>(levels.size()) < options.max_levels &&
         levels.back().num_vertices() > options.coarsest_size) {
    Coarsening c = CoarsenByHeavyEdgeMatching(levels.back());
    if (static_cast<double>(c.num_coarse) >
        options.min_shrink_factor *
            static_cast<double>(levels.back().num_vertices())) {
      break;  // matching stalled; solve at this size
    }
    levels.push_back(c.coarse);
    coarsenings.push_back(std::move(c));
  }

  // Exact solve at the coarsest level.
  FiedlerOptions coarse_options = options.fiedler;
  auto coarse = ComputeFiedler(BuildLaplacian(levels.back()), coarse_options);
  if (!coarse.ok()) return coarse.status();

  FiedlerResult result;
  result.method_used = "multilevel(" + std::to_string(levels.size()) +
                       " levels, coarsest " +
                       std::to_string(levels.back().num_vertices()) + ")";
  result.matvecs = coarse->matvecs;
  Vector current = coarse->fiedler;
  double lambda = coarse->lambda2;

  // Prolong + refine, coarsest to finest.
  for (size_t k = coarsenings.size(); k-- > 0;) {
    current = ProlongVector(coarsenings[k], current);
    const Graph& fine = levels[k];
    const SparseMatrix lap = BuildLaplacian(fine);
    const double shift = lap.GershgorinBound() * 1.0001 + 1e-12;
    SparseOperator lap_op(&lap);
    ShiftNegateOperator op(&lap_op, shift);

    const int64_t m = fine.num_vertices();
    std::vector<Vector> deflate;
    deflate.emplace_back(static_cast<size_t>(m),
                         1.0 / std::sqrt(static_cast<double>(m)));

    LanczosOptions lopt;
    lopt.max_basis = options.refine_max_basis;
    lopt.max_restarts = options.refine_max_restarts;
    lopt.tol = options.fiedler.tol;
    lopt.seed = options.fiedler.seed;
    lopt.start = current;
    auto refined = LargestEigenpair(op, deflate, lopt);
    if (!refined.ok()) return refined.status();
    result.matvecs += refined->matvecs;
    if (!refined->converged) {
      return InternalError(
          "multilevel refinement did not converge at level " +
          std::to_string(k) + " (residual " +
          std::to_string(refined->residual) + ")");
    }
    current = refined->eigenvector;
    lambda = shift - refined->eigenvalue;
  }

  result.lambda2 = lambda;
  result.fiedler = std::move(current);
  result.pairs.push_back({result.lambda2, result.fiedler});
  result.degenerate_dim = 1;  // only one pair is tracked through the cycle
  return result;
}

}  // namespace spectral
