#include "core/multilevel.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "graph/laplacian.h"
#include "graph/traversal.h"
#include "util/check.h"

namespace spectral {

StatusOr<FiedlerResult> ComputeFiedlerMultilevel(
    const Graph& graph, const MultilevelOptions& options,
    std::span<const Vector> canonical_axes) {
  const int64_t n = graph.num_vertices();
  if (n < 2) {
    return InvalidArgumentError("multilevel Fiedler needs >= 2 vertices");
  }
  if (!IsConnected(graph)) {
    return FailedPreconditionError(
        "multilevel Fiedler requires a connected graph");
  }

  // One shared hierarchy build (graph side), then Laplacians per level
  // (eigensolver side).
  const CoarseningHierarchy hierarchy =
      BuildCoarseningHierarchy(graph, options.coarsen);
  std::vector<WarmStartLevel> levels(hierarchy.steps.size() + 1);
  levels[0].laplacian = BuildLaplacian(graph);
  for (size_t k = 0; k < hierarchy.steps.size(); ++k) {
    levels[k].fine_to_coarse = hierarchy.steps[k].fine_to_coarse;
    levels[k + 1].laplacian = BuildLaplacian(hierarchy.steps[k].coarse);
  }

  WarmStartOptions warm_options;
  warm_options.num_vectors =
      static_cast<int>(std::min<int64_t>(options.fiedler.num_pairs, n - 1));
  warm_options.smooth_steps = options.smooth_steps;
  warm_options.jacobi_omega = options.jacobi_omega;
  warm_options.level_tol = options.level_tol;
  warm_options.level_max_basis = options.level_max_basis;
  warm_options.level_max_restarts = options.level_max_restarts;
  warm_options.cheb_degree_max = options.fiedler.cheb_degree_max;
  warm_options.seed = options.fiedler.seed;
  auto warm = MultilevelFiedlerWarmStart(levels, warm_options);
  if (!warm.ok()) return warm.status();

  // Full-accuracy warm-started solve at the finest level: identical
  // contract (and, by construction, identical orders downstream) to the
  // flat ComputeFiedler call it replaces. A forced kDense only ever meant
  // "dense reference at the coarsest level" in the multilevel cascade
  // (the warm start already honored that); letting it through here would
  // dense-solve the *finest* level at O(n^3) and discard the warm start,
  // so above the dense threshold it maps to the block path.
  FiedlerOptions fine_options = options.fiedler;
  if (fine_options.method == FiedlerMethod::kDense &&
      n > fine_options.dense_threshold) {
    fine_options.method = FiedlerMethod::kBlockLanczos;
  }
  auto fine = ComputeFiedler(levels[0].laplacian, fine_options,
                             canonical_axes, &warm->block);
  if (!fine.ok()) return fine.status();

  FiedlerResult result = std::move(*fine);
  result.matvecs += warm->matvecs;
  result.method_used =
      "multilevel(" + std::to_string(levels.size()) + " levels, coarsest " +
      std::to_string(levels.back().laplacian.rows()) + ")+" +
      result.method_used;
  return result;
}

}  // namespace spectral
