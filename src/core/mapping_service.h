// MappingService: the batching, caching front end over the OrderingEngine
// registry — the seam a production deployment talks to.
//
//   MappingService service;
//   auto result = service.Order(OrderingRequest::ForPoints(points));
//   auto batch  = service.OrderBatch(requests);
//
// OrderBatch deduplicates requests by fingerprint, consults an LRU order
// cache (keyed by OrderingRequest::Fingerprint(), a content hash of input +
// options), and fans the remaining solves out largest-first across one
// shared util/thread_pool. That same pool is handed down to the spectral
// engines (SpectralLpmOptions::pool), so request fan-out, per-component
// Fiedler solves, and row-partitioned matvecs all draw from a single set of
// workers instead of nesting a pool per request.
//
// Determinism contract: results are byte-identical to issuing the requests
// one at a time against a fresh engine — cache on or off, any parallelism —
// because every engine solve is deterministic and independent. The only
// service-added artifact is a " | cache=hit|miss|off" suffix on
// OrderingResult::detail recording how each request was served; hit/miss/
// eviction *counters* live in the MappingServiceStats struct. (One
// divergence from a strict serial replay: within a batch, duplicate
// requests are served from one solve even if a serial replay would have
// evicted the entry in between; the order payload is identical either way.)

#ifndef SPECTRAL_LPM_CORE_MAPPING_SERVICE_H_
#define SPECTRAL_LPM_CORE_MAPPING_SERVICE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "util/hash.h"
#include "util/status.h"

namespace spectral {

class FaultInjector;
class ThreadPool;

/// Options for MappingService.
struct MappingServiceOptions {
  /// Worker threads shared by batch fan-out and the spectral engines'
  /// component/matvec parallelism. 0 = hardware_concurrency, 1 = serial
  /// (no pool; each request's own parallelism settings apply unchanged).
  int parallelism = 0;
  /// Capacity of the LRU order cache, in cached results. 0 disables
  /// caching (batch-level deduplication still applies).
  size_t cache_capacity = 128;
  /// Optional fault-injection registry (not owned; must outlive the
  /// service). Handed to every engine solve as spectral.faults, so a
  /// SPECTRAL_FAULTS build can script "solver.converge" failures through
  /// the full ladder below. Runtime-only: never fingerprinted, a no-op in
  /// normal builds.
  FaultInjector* faults = nullptr;
  /// Degradation ladder for unconverged solves (converged == false on an
  /// otherwise-ok result). When enabled: retry the solve once with
  /// max_restarts escalated by retry_restart_multiplier; if still
  /// unconverged, serve the fallback curve order (point inputs) or the
  /// best-effort spectral order (graph inputs), tagged " | degraded=..."
  /// in detail. Unconverged results are never cached either way — the
  /// ladder only decides what gets served.
  bool degrade_unconverged = true;
  /// Restart-budget escalation factor for the ladder's single retry.
  int retry_restart_multiplier = 4;
  /// Geometry-only engine serving degraded point requests ("hilbert",
  /// "sweep", ...). Must accept kPoints requests.
  std::string fallback_engine = "hilbert";
};

/// Service-level counters. Hits count requests served without running an
/// engine (LRU hit or duplicate-in-batch); misses count engine solves.
struct MappingServiceStats {
  int64_t requests = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  /// Requests that returned an error (errors are never cached).
  int64_t failures = 0;
  /// Engine invocations actually run (== cache_misses).
  int64_t solves = 0;
  /// Eigensolver matvecs performed by those solves. Unchanged by a
  /// warm-cache batch: repeats cost zero additional eigensolver work.
  int64_t solver_matvecs = 0;
  /// OrderBatch invocations (Order() counts as a batch of one).
  int64_t batches = 0;
  /// Valid requests served from another request in the *same* batch
  /// (within-batch fingerprint dedup; a subset of cache_hits).
  int64_t coalesced_requests = 0;
  /// Wall time spent inside OrderBatch, summed over batches / worst batch.
  double batch_latency_total_ms = 0.0;
  double batch_latency_max_ms = 0.0;
  /// Ladder rung 1: solves re-run with an escalated restart budget after
  /// the first attempt came back unconverged. Not counted in `solves`
  /// (that stays == cache_misses, one per distinct request).
  int64_t retried_solves = 0;
  /// Ladder rung 2: requests served a degraded order (fallback curve or
  /// marked best-effort spectral). Degraded results are never cached.
  int64_t degraded_orders = 0;

  /// Zeroes every counter (a stats window boundary, e.g. between the cold
  /// and warm phases of a serving bench).
  void Reset() { *this = MappingServiceStats(); }
};

/// One persistable order-cache entry: the cache key plus the engine result
/// exactly as the LRU stores it (no " | cache=..." annotation — that tag is
/// added per serve, not per entry). See core/serialization.h for the
/// snapshot wire format.
struct OrderCacheEntry {
  Fingerprint128 fingerprint;
  OrderingResult result;
};

/// Thread-safe facade: Order/OrderBatch may be called from any thread.
class MappingService {
 public:
  explicit MappingService(MappingServiceOptions options = {});
  ~MappingService();
  MappingService(const MappingService&) = delete;
  MappingService& operator=(const MappingService&) = delete;

  /// Orders one request (a batch of one: same cache, same counters).
  StatusOr<OrderingResult> Order(const OrderingRequest& request);

  /// Orders every request, returning results aligned with the input span.
  /// Requests are deduplicated by fingerprint, cache-checked, and the
  /// remaining solves run largest-first on the shared pool. A failed solve
  /// fails every duplicate of that request with the same status.
  std::vector<StatusOr<OrderingResult>> OrderBatch(
      std::span<const OrderingRequest> requests);

  MappingServiceStats stats() const;
  /// Zeroes the counters (the cache contents are retained).
  void ResetStats();
  /// Drops every cached order (counters are retained).
  void ClearCache();
  /// Entries currently held by the LRU order cache.
  size_t CacheSize() const;
  const MappingServiceOptions& options() const { return options_; }

  /// Copies the LRU order cache, most-recently-used first — the payload a
  /// serving tier snapshots to disk so a restarted process keeps its warm
  /// set (core/serialization.h WriteOrderCacheSnapshot).
  std::vector<OrderCacheEntry> ExportCache() const;

  /// Pre-fills the cache from a snapshot. Entries must be ordered
  /// most-recently-used first (ExportCache order); recency is preserved.
  /// Entries beyond cache_capacity and fingerprints already cached are
  /// skipped; caching disabled imports nothing. Returns the number of
  /// entries actually inserted. Counters are untouched: restoring a warm
  /// set is not a hit, a miss, or an eviction.
  int64_t ImportCache(std::span<const OrderCacheEntry> entries);

 private:
  /// Moves `fingerprint` to the front of the LRU, inserting `result` if
  /// absent; evicts from the back past capacity. Caller holds mu_.
  void InsertLocked(const Fingerprint128& fingerprint,
                    const OrderingResult& result);

  const MappingServiceOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when serial

  mutable std::mutex mu_;
  // LRU: most recently used at the front; index_ points into lru_.
  std::list<std::pair<Fingerprint128, OrderingResult>> lru_;
  std::unordered_map<Fingerprint128,
                     std::list<std::pair<Fingerprint128, OrderingResult>>::
                         iterator,
                     Fingerprint128Hash>
      index_;
  MappingServiceStats stats_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_CORE_MAPPING_SERVICE_H_
