#include "query/pair_metrics.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "util/check.h"
#include "util/random.h"

namespace spectral {

namespace {

struct Accumulator {
  int64_t max_rank = 0;
  double sum_rank = 0.0;
  int64_t count = 0;

  void Add(int64_t rank_distance) {
    max_rank = std::max(max_rank, rank_distance);
    sum_rank += static_cast<double>(rank_distance);
    count += 1;
  }
};

PairDistanceSeries Finish(std::span<const int64_t> distances,
                          const std::unordered_map<int64_t, Accumulator>& acc) {
  PairDistanceSeries series;
  for (int64_t d : distances) {
    series.manhattan_distance.push_back(d);
    auto it = acc.find(d);
    if (it == acc.end() || it->second.count == 0) {
      series.max_rank_distance.push_back(0);
      series.mean_rank_distance.push_back(0.0);
      series.pair_count.push_back(0);
    } else {
      series.max_rank_distance.push_back(it->second.max_rank);
      series.mean_rank_distance.push_back(
          it->second.sum_rank / static_cast<double>(it->second.count));
      series.pair_count.push_back(it->second.count);
    }
  }
  return series;
}

}  // namespace

PairDistanceSeries ComputePairDistanceSeries(
    const PointSet& points, const LinearOrder& order,
    std::span<const int64_t> distances, const PairMetricsOptions& options) {
  SPECTRAL_CHECK_EQ(points.size(), order.size());
  std::unordered_map<int64_t, Accumulator> acc;
  for (int64_t d : distances) acc[d];  // pre-create requested buckets

  const int64_t n = points.size();
  if (options.sample_pairs <= 0) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        const int64_t d = points.Distance(i, j);
        auto it = acc.find(d);
        if (it == acc.end()) continue;
        it->second.Add(std::llabs(order.RankOf(i) - order.RankOf(j)));
      }
    }
    return Finish(distances, acc);
  }

  Rng rng(options.seed);
  for (int64_t s = 0; s < options.sample_pairs; ++s) {
    const int64_t i = rng.UniformInt(0, n - 1);
    int64_t j = rng.UniformInt(0, n - 2);
    if (j >= i) ++j;
    const int64_t d = points.Distance(i, j);
    auto it = acc.find(d);
    if (it == acc.end()) continue;
    it->second.Add(std::llabs(order.RankOf(i) - order.RankOf(j)));
  }
  return Finish(distances, acc);
}

PairDistanceSeries ComputeAxisPairSeries(const PointSet& points,
                                         const LinearOrder& order, int axis,
                                         std::span<const int64_t> distances) {
  SPECTRAL_CHECK_EQ(points.size(), order.size());
  SPECTRAL_CHECK_GE(axis, 0);
  SPECTRAL_CHECK_LT(axis, points.dims());
  SPECTRAL_CHECK(points.has_index()) << "call points.BuildIndex() first";

  std::unordered_map<int64_t, Accumulator> acc;
  for (int64_t d : distances) acc[d];

  std::vector<Coord> probe(static_cast<size_t>(points.dims()));
  for (int64_t i = 0; i < points.size(); ++i) {
    const auto p = points[i];
    std::copy(p.begin(), p.end(), probe.begin());
    for (int64_t d : distances) {
      if (d <= 0) continue;
      probe[static_cast<size_t>(axis)] =
          static_cast<Coord>(p[static_cast<size_t>(axis)] + d);
      const int64_t j = points.Find(probe);
      if (j < 0) continue;
      acc[d].Add(std::llabs(order.RankOf(i) - order.RankOf(j)));
    }
    probe[static_cast<size_t>(axis)] = p[static_cast<size_t>(axis)];
  }
  return Finish(distances, acc);
}

}  // namespace spectral
