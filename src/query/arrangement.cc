#include "query/arrangement.h"

#include <cmath>

#include "util/check.h"

namespace spectral {

ArrangementMetrics ComputeArrangementMetrics(const Graph& g,
                                             const LinearOrder& order) {
  SPECTRAL_CHECK_EQ(g.num_vertices(), order.size());
  ArrangementMetrics metrics;
  double total_weight = 0.0;
  g.ForEachEdge([&](int64_t u, int64_t v, double w) {
    const int64_t gap = std::llabs(order.RankOf(u) - order.RankOf(v));
    const double dgap = static_cast<double>(gap);
    metrics.squared += w * dgap * dgap;
    metrics.linear += w * dgap;
    metrics.bandwidth = std::max(metrics.bandwidth, gap);
    total_weight += w;
  });
  metrics.mean_gap = total_weight > 0.0 ? metrics.linear / total_weight : 0.0;
  return metrics;
}

double SquaredArrangementLowerBound(double lambda2, int64_t n) {
  SPECTRAL_CHECK_GE(n, 0);
  const double dn = static_cast<double>(n);
  return lambda2 * dn * (dn * dn - 1.0) / 12.0;
}

}  // namespace spectral
