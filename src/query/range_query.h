// Range-query locality metrics (paper Figure 6): for every axis-aligned
// range query of a given volume over a full grid, measure the spread
// (max - min) of the ranks of the points inside. A small spread means a
// range query can be answered with one short sequential sweep of the
// one-dimensional storage.

#ifndef SPECTRAL_LPM_QUERY_RANGE_QUERY_H_
#define SPECTRAL_LPM_QUERY_RANGE_QUERY_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/linear_order.h"
#include "space/grid.h"
#include "stats/running_stats.h"

namespace spectral {

/// Extents of a hyper-rectangular query window.
struct RangeQueryShape {
  std::vector<Coord> extents;

  int64_t Volume() const;
};

/// The most balanced (sides as equal as possible) hyper-rectangle inside
/// `grid` whose volume best approximates `volume_fraction` of the grid.
/// Deterministic; used to translate the paper's "range query size (percent)"
/// x-axis into window extents.
RangeQueryShape BalancedShape(const GridSpec& grid, double volume_fraction);

/// Aggregates over all query placements.
struct RangeQueryStats {
  /// Figure 6a: the worst spread observed.
  int64_t max_spread = 0;
  /// Figure 6b: stddev of the spread over the whole query population.
  double stddev_spread = 0.0;
  double mean_spread = 0.0;
  int64_t num_queries = 0;
  /// Extension (Moon et al. clustering metric): number of runs of
  /// consecutive ranks inside a query = number of sequential I/O segments.
  double mean_clusters = 0.0;
  int64_t max_clusters = 0;
};

/// Options for EvaluateRangeQueries.
struct RangeQueryOptions {
  /// Also evaluate every distinct axis permutation of the shape ("all
  /// possible partial range queries with a certain size", paper section 5).
  bool include_axis_permutations = true;
  /// Also collect the cluster-count metric (costs a sort per query).
  bool collect_clusters = false;
};

/// Slides the query window over every in-grid position (and optionally
/// every axis permutation of the shape) on a *full grid* point set whose
/// point index equals the row-major cell id — exactly what
/// PointSet::FullGrid + any LinearOrder over it provides.
RangeQueryStats EvaluateRangeQueries(const GridSpec& grid,
                                     const LinearOrder& order,
                                     const RangeQueryShape& shape,
                                     const RangeQueryOptions& options = {});

/// "All possible partial range queries with a certain size" (paper
/// section 5): every hyper-rectangle shape (each extent in [1, side],
/// including full-axis slabs) whose volume is within rel_tol of
/// volume_fraction * NumCells. If no shape lands inside the tolerance the
/// closest-volume shapes (by log ratio) are returned, so the result is
/// never empty. Shapes are returned in lexicographic extent order.
std::vector<RangeQueryShape> ShapesForVolume(const GridSpec& grid,
                                             double volume_fraction,
                                             double rel_tol = 0.15);

/// Aggregates EvaluateRangeQueries over a set of shapes (axis permutations
/// are not added on top: the shape set already enumerates axes explicitly).
RangeQueryStats EvaluateRangeQueryShapes(
    const GridSpec& grid, const LinearOrder& order,
    std::span<const RangeQueryShape> shapes,
    const RangeQueryOptions& options = {});

/// Per-query access for callers that need more than the aggregate (e.g.
/// B+-tree I/O accounting): calls fn(min_rank, max_rank, volume) once per
/// placement of `shape` (no axis permutations).
void ForEachRangeQuery(
    const GridSpec& grid, const LinearOrder& order,
    const RangeQueryShape& shape,
    const std::function<void(int64_t min_rank, int64_t max_rank,
                             int64_t volume)>& fn);

}  // namespace spectral

#endif  // SPECTRAL_LPM_QUERY_RANGE_QUERY_H_
