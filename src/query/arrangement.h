// Arrangement objectives of a linear order on a graph — the quantities the
// paper's Theorems 1-3 are about, evaluated on integer ranks:
//   squared:   sum w (r_u - r_v)^2   (the paper's objective; "2-sum")
//   linear:    sum w |r_u - r_v|     (minimum linear arrangement)
//   bandwidth: max |r_u - r_v|       (minimum bandwidth)
// Juvan & Mohar (the paper's ref [3]) relate all three to Laplacian
// eigenvalues; the ablation bench compares every mapping on them.

#ifndef SPECTRAL_LPM_QUERY_ARRANGEMENT_H_
#define SPECTRAL_LPM_QUERY_ARRANGEMENT_H_

#include <cstdint>

#include "core/linear_order.h"
#include "graph/graph.h"

namespace spectral {

/// All arrangement objectives of one order on one graph.
struct ArrangementMetrics {
  double squared = 0.0;
  double linear = 0.0;
  int64_t bandwidth = 0;
  /// linear / total edge weight: the average rank gap across an edge.
  double mean_gap = 0.0;
};

/// Evaluates `order` on `g`; requires matching sizes.
ArrangementMetrics ComputeArrangementMetrics(const Graph& g,
                                             const LinearOrder& order);

/// Juvan-Mohar style lower bound on the squared objective over integer
/// permutations: any permutation r, centered, satisfies
/// r_c^T L r_c >= lambda2 * ||r_c||^2 with ||r_c||^2 = n(n^2-1)/12, so no
/// order can do better than lambda2 * n * (n^2 - 1) / 12.
double SquaredArrangementLowerBound(double lambda2, int64_t n);

}  // namespace spectral

#endif  // SPECTRAL_LPM_QUERY_ARRANGEMENT_H_
