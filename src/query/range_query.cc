#include "query/range_query.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.h"

namespace spectral {

int64_t RangeQueryShape::Volume() const {
  int64_t v = 1;
  for (Coord e : extents) v *= e;
  return v;
}

RangeQueryShape BalancedShape(const GridSpec& grid, double volume_fraction) {
  SPECTRAL_CHECK_GT(volume_fraction, 0.0);
  SPECTRAL_CHECK_LE(volume_fraction, 1.0);
  const int64_t target = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::llround(volume_fraction *
                          static_cast<double>(grid.NumCells()))));

  RangeQueryShape shape;
  shape.extents.assign(static_cast<size_t>(grid.dims()), 1);
  // Grow the currently-smallest extent while it reduces |volume - target|.
  while (true) {
    int64_t volume = shape.Volume();
    if (volume >= target) break;
    int best_axis = -1;
    for (int a = 0; a < grid.dims(); ++a) {
      if (shape.extents[static_cast<size_t>(a)] >= grid.side(a)) continue;
      if (best_axis < 0 || shape.extents[static_cast<size_t>(a)] <
                               shape.extents[static_cast<size_t>(best_axis)]) {
        best_axis = a;
      }
    }
    if (best_axis < 0) break;  // window already fills the grid
    const int64_t grown =
        volume / shape.extents[static_cast<size_t>(best_axis)] *
        (shape.extents[static_cast<size_t>(best_axis)] + 1);
    // Stop before growing if the overshoot would be worse than the current
    // undershoot.
    if (grown - target > target - volume) break;
    shape.extents[static_cast<size_t>(best_axis)] += 1;
  }
  return shape;
}

std::vector<RangeQueryShape> ShapesForVolume(const GridSpec& grid,
                                             double volume_fraction,
                                             double rel_tol) {
  SPECTRAL_CHECK_GT(volume_fraction, 0.0);
  SPECTRAL_CHECK_LE(volume_fraction, 1.0);
  SPECTRAL_CHECK_GE(rel_tol, 0.0);
  const double target =
      std::max(1.0, volume_fraction * static_cast<double>(grid.NumCells()));
  const int dims = grid.dims();

  // Enumerate every extent vector (cheap: product of sides combinations).
  std::vector<RangeQueryShape> in_tolerance;
  std::vector<RangeQueryShape> closest;
  double best_dev = std::numeric_limits<double>::infinity();

  std::vector<Coord> extents(static_cast<size_t>(dims), 1);
  while (true) {
    double volume = 1.0;
    for (Coord e : extents) volume *= static_cast<double>(e);
    const double dev = std::fabs(std::log(volume / target));
    if (volume >= target * (1.0 - rel_tol) &&
        volume <= target * (1.0 + rel_tol)) {
      in_tolerance.push_back(RangeQueryShape{extents});
    }
    if (dev < best_dev - 1e-12) {
      best_dev = dev;
      closest.clear();
      closest.push_back(RangeQueryShape{extents});
    } else if (dev <= best_dev + 1e-12) {
      closest.push_back(RangeQueryShape{extents});
    }
    // Next extent vector (odometer, last axis fastest).
    int a = dims - 1;
    while (a >= 0 && extents[static_cast<size_t>(a)] == grid.side(a)) {
      extents[static_cast<size_t>(a)] = 1;
      --a;
    }
    if (a < 0) break;
    extents[static_cast<size_t>(a)] += 1;
  }
  return in_tolerance.empty() ? closest : in_tolerance;
}

namespace {

// Advances a mixed-radix counter; returns false after the last value.
bool NextCounter(std::vector<Coord>& counter, std::span<const Coord> limits) {
  for (size_t a = counter.size(); a-- > 0;) {
    if (counter[a] + 1 < limits[a]) {
      counter[a] += 1;
      std::fill(counter.begin() + static_cast<int64_t>(a) + 1, counter.end(), 0);
      return true;
    }
  }
  return false;
}

struct RangeAccumulator {
  RunningStats spread;
  RunningStats clusters;
  int64_t max_spread = 0;
  int64_t max_clusters = 0;
};

// Slides one concrete window shape over all positions.
void AccumulateShape(const GridSpec& grid, const LinearOrder& order,
                     const std::vector<Coord>& extents, bool collect_clusters,
                     RangeAccumulator& acc) {
  const int dims = grid.dims();
  std::vector<Coord> origin(static_cast<size_t>(dims), 0);
  std::vector<Coord> offset(static_cast<size_t>(dims), 0);
  std::vector<Coord> cell(static_cast<size_t>(dims));
  std::vector<Coord> origin_limits(static_cast<size_t>(dims));
  for (int a = 0; a < dims; ++a) {
    origin_limits[static_cast<size_t>(a)] =
        static_cast<Coord>(grid.side(a) - extents[static_cast<size_t>(a)] + 1);
  }
  std::vector<int64_t> ranks;

  do {
    int64_t min_rank = order.size();
    int64_t max_rank = -1;
    ranks.clear();
    std::fill(offset.begin(), offset.end(), 0);
    do {
      for (int a = 0; a < dims; ++a) {
        cell[static_cast<size_t>(a)] = static_cast<Coord>(
            origin[static_cast<size_t>(a)] + offset[static_cast<size_t>(a)]);
      }
      const int64_t rank = order.RankOf(grid.Flatten(cell));
      min_rank = std::min(min_rank, rank);
      max_rank = std::max(max_rank, rank);
      if (collect_clusters) ranks.push_back(rank);
    } while (NextCounter(offset, extents));

    const int64_t spread = max_rank - min_rank;
    acc.max_spread = std::max(acc.max_spread, spread);
    acc.spread.Add(static_cast<double>(spread));

    if (collect_clusters) {
      std::sort(ranks.begin(), ranks.end());
      int64_t clusters = 1;
      for (size_t i = 1; i < ranks.size(); ++i) {
        if (ranks[i] != ranks[i - 1] + 1) ++clusters;
      }
      acc.max_clusters = std::max(acc.max_clusters, clusters);
      acc.clusters.Add(static_cast<double>(clusters));
    }
  } while (NextCounter(origin, origin_limits));
}

RangeQueryStats FinishStats(const RangeAccumulator& acc,
                            bool collect_clusters) {
  RangeQueryStats stats;
  stats.max_spread = acc.max_spread;
  stats.num_queries = acc.spread.Count();
  stats.mean_spread = acc.spread.Mean();
  stats.stddev_spread = acc.spread.StdDev();
  if (collect_clusters && acc.clusters.Count() > 0) {
    stats.mean_clusters = acc.clusters.Mean();
    stats.max_clusters = acc.max_clusters;
  }
  return stats;
}

}  // namespace

RangeQueryStats EvaluateRangeQueries(const GridSpec& grid,
                                     const LinearOrder& order,
                                     const RangeQueryShape& shape,
                                     const RangeQueryOptions& options) {
  SPECTRAL_CHECK_EQ(order.size(), grid.NumCells());
  SPECTRAL_CHECK_EQ(static_cast<int>(shape.extents.size()), grid.dims());
  const int dims = grid.dims();

  // Window shapes to evaluate: the given extents, or every distinct axis
  // permutation of them.
  std::vector<std::vector<Coord>> shapes;
  auto fits = [&](const std::vector<Coord>& extents) {
    for (int a = 0; a < dims; ++a) {
      if (extents[static_cast<size_t>(a)] > grid.side(a)) return false;
    }
    return true;
  };
  if (options.include_axis_permutations) {
    std::vector<Coord> perm = shape.extents;
    std::sort(perm.begin(), perm.end());
    do {
      if (fits(perm)) shapes.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
  } else if (fits(shape.extents)) {
    shapes.push_back(shape.extents);
  }
  SPECTRAL_CHECK(!shapes.empty()) << "query shape does not fit in the grid";

  RangeAccumulator acc;
  for (const auto& extents : shapes) {
    AccumulateShape(grid, order, extents, options.collect_clusters, acc);
  }
  return FinishStats(acc, options.collect_clusters);
}

void ForEachRangeQuery(
    const GridSpec& grid, const LinearOrder& order,
    const RangeQueryShape& shape,
    const std::function<void(int64_t min_rank, int64_t max_rank,
                             int64_t volume)>& fn) {
  SPECTRAL_CHECK_EQ(order.size(), grid.NumCells());
  SPECTRAL_CHECK_EQ(static_cast<int>(shape.extents.size()), grid.dims());
  const int dims = grid.dims();
  const int64_t volume = shape.Volume();
  std::vector<Coord> origin(static_cast<size_t>(dims), 0);
  std::vector<Coord> offset(static_cast<size_t>(dims), 0);
  std::vector<Coord> cell(static_cast<size_t>(dims));
  std::vector<Coord> origin_limits(static_cast<size_t>(dims));
  for (int a = 0; a < dims; ++a) {
    SPECTRAL_CHECK_LE(shape.extents[static_cast<size_t>(a)], grid.side(a));
    origin_limits[static_cast<size_t>(a)] = static_cast<Coord>(
        grid.side(a) - shape.extents[static_cast<size_t>(a)] + 1);
  }
  do {
    int64_t min_rank = order.size();
    int64_t max_rank = -1;
    std::fill(offset.begin(), offset.end(), 0);
    do {
      for (int a = 0; a < dims; ++a) {
        cell[static_cast<size_t>(a)] = static_cast<Coord>(
            origin[static_cast<size_t>(a)] + offset[static_cast<size_t>(a)]);
      }
      const int64_t rank = order.RankOf(grid.Flatten(cell));
      min_rank = std::min(min_rank, rank);
      max_rank = std::max(max_rank, rank);
    } while (NextCounter(offset, shape.extents));
    fn(min_rank, max_rank, volume);
  } while (NextCounter(origin, origin_limits));
}

RangeQueryStats EvaluateRangeQueryShapes(const GridSpec& grid,
                                         const LinearOrder& order,
                                         std::span<const RangeQueryShape> shapes,
                                         const RangeQueryOptions& options) {
  SPECTRAL_CHECK_EQ(order.size(), grid.NumCells());
  SPECTRAL_CHECK(!shapes.empty());
  RangeAccumulator acc;
  for (const RangeQueryShape& shape : shapes) {
    SPECTRAL_CHECK_EQ(static_cast<int>(shape.extents.size()), grid.dims());
    for (int a = 0; a < grid.dims(); ++a) {
      SPECTRAL_CHECK_LE(shape.extents[static_cast<size_t>(a)], grid.side(a));
    }
    AccumulateShape(grid, order, shape.extents, options.collect_clusters, acc);
  }
  return FinishStats(acc, options.collect_clusters);
}

}  // namespace spectral
