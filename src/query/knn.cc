#include "query/knn.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace spectral {

KnnStats EvaluateKnnRecall(const PointSet& points, const LinearOrder& order,
                           const KnnOptions& options) {
  SPECTRAL_CHECK_EQ(points.size(), order.size());
  SPECTRAL_CHECK_GE(options.k, 1);
  SPECTRAL_CHECK_GE(options.window, 1);
  SPECTRAL_CHECK_GE(options.num_queries, 1);
  const int64_t n = points.size();
  SPECTRAL_CHECK_GT(n, options.k) << "need more points than k";

  Rng rng(options.seed);
  double recall_sum = 0.0;
  double ratio_sum = 0.0;
  std::vector<int64_t> all_dists(static_cast<size_t>(n));

  for (int64_t q = 0; q < options.num_queries; ++q) {
    const int64_t query = rng.UniformInt(0, n - 1);

    // Exact ground truth: k smallest distances (query excluded).
    for (int64_t i = 0; i < n; ++i) {
      all_dists[static_cast<size_t>(i)] = points.Distance(query, i);
    }
    std::vector<int64_t> candidates;
    candidates.reserve(static_cast<size_t>(n - 1));
    for (int64_t i = 0; i < n; ++i) {
      if (i != query) candidates.push_back(i);
    }
    std::nth_element(candidates.begin(),
                     candidates.begin() + (options.k - 1), candidates.end(),
                     [&](int64_t a, int64_t b) {
                       const int64_t da = all_dists[static_cast<size_t>(a)];
                       const int64_t db = all_dists[static_cast<size_t>(b)];
                       return da != db ? da < db : a < b;
                     });
    const int64_t kth_dist =
        all_dists[static_cast<size_t>(candidates[static_cast<size_t>(options.k - 1)])];
    double exact_mean = 0.0;
    for (int i = 0; i < options.k; ++i) {
      exact_mean += static_cast<double>(
          all_dists[static_cast<size_t>(candidates[static_cast<size_t>(i)])]);
    }
    exact_mean /= options.k;

    // Window-based approximation: the k distance-closest points among the
    // 2*window rank neighbors of the query.
    const int64_t rank = order.RankOf(query);
    std::vector<int64_t> window_pts;
    for (int64_t r = std::max<int64_t>(0, rank - options.window);
         r <= std::min<int64_t>(n - 1, rank + options.window); ++r) {
      if (r != rank) window_pts.push_back(order.PointAtRank(r));
    }
    std::sort(window_pts.begin(), window_pts.end(), [&](int64_t a, int64_t b) {
      const int64_t da = all_dists[static_cast<size_t>(a)];
      const int64_t db = all_dists[static_cast<size_t>(b)];
      return da != db ? da < db : a < b;
    });
    const int64_t have =
        std::min<int64_t>(options.k, static_cast<int64_t>(window_pts.size()));
    int64_t hits = 0;
    double approx_mean = 0.0;
    for (int64_t i = 0; i < have; ++i) {
      const int64_t d = all_dists[static_cast<size_t>(window_pts[static_cast<size_t>(i)])];
      if (d <= kth_dist) ++hits;
      approx_mean += static_cast<double>(d);
    }
    approx_mean = have > 0 ? approx_mean / static_cast<double>(have) : 0.0;

    recall_sum += static_cast<double>(hits) / options.k;
    ratio_sum += exact_mean > 0 ? approx_mean / exact_mean : 1.0;
  }

  KnnStats stats;
  stats.mean_recall = recall_sum / static_cast<double>(options.num_queries);
  stats.mean_distance_ratio =
      ratio_sum / static_cast<double>(options.num_queries);
  return stats;
}

}  // namespace spectral
