#include "query/executor.h"

#include <algorithm>
#include <utility>

#include "core/ordering_engine.h"
#include "util/check.h"

namespace spectral {

QueryExecutor::QueryExecutor(const PointSet& points,
                             const StorageLayout& layout,
                             const StaticBPlusTree& rank_index,
                             const PackedRTree& rtree, LruBufferPool* pool,
                             const IoCostModel& io)
    : points_(&points),
      layout_(&layout),
      rank_index_(&rank_index),
      rtree_(&rtree),
      pool_(pool),
      io_(io) {
  SPECTRAL_CHECK_EQ(points.size(), layout.num_records());
  SPECTRAL_CHECK_EQ(rank_index.num_keys(), layout.num_records());
  SPECTRAL_CHECK_EQ(rtree.num_points(), layout.num_records());
}

void QueryExecutor::AccessPages(std::span<const int64_t> pages,
                                QueryResultStats* stats) const {
  stats->pages_touched = static_cast<int64_t>(pages.size());
  for (size_t i = 0; i < pages.size(); ++i) {
    SPECTRAL_DCHECK(i == 0 || pages[i] > pages[i - 1]);
    const bool hit = pool_ != nullptr && pool_->Access(pages[i]);
    if (hit) {
      stats->page_hits += 1;
    } else {
      stats->page_io += 1;
    }
    if (i == 0 || pages[i] != pages[i - 1] + 1) stats->page_runs += 1;
  }
  PageFootprint footprint;
  footprint.distinct_pages = stats->pages_touched;
  footprint.page_runs = stats->page_runs;
  stats->io_cost = IoCost(footprint, io_);
}

QueryResultStats QueryExecutor::RangeViaBTree(std::span<const Coord> lo,
                                              std::span<const Coord> hi)
    const {
  QueryResultStats stats;
  // Plan: the rank interval spanned by the matching records. The planner
  // walks the R-tree (matching ranks come back ascending) but its node
  // visits are not billed — the paper's plan derives the interval from the
  // mapping itself; only the B+-tree probe and the data pages are the
  // plan's I/O.
  std::vector<int64_t> matching;
  const auto planned = rtree_->RangeQuery(lo, hi, &matching);
  stats.matches = planned.matches;
  if (matching.empty()) {
    stats.index_nodes_read = rank_index_->height();  // one wasted descent
    return stats;
  }
  const int64_t min_rank = matching.front();
  const int64_t max_rank = matching.back();

  const auto scan = rank_index_->RangeScan(min_rank, max_rank);
  stats.records_scanned = scan.records;
  stats.index_nodes_read = scan.internal_read + scan.leaves_read;

  const int64_t first_page = layout_->PageOfRank(min_rank);
  const int64_t last_page = layout_->PageOfRank(max_rank);
  std::vector<int64_t> pages;
  pages.reserve(static_cast<size_t>(last_page - first_page + 1));
  for (int64_t p = first_page; p <= last_page; ++p) pages.push_back(p);
  AccessPages(pages, &stats);
  return stats;
}

QueryResultStats QueryExecutor::RangeViaRTree(std::span<const Coord> lo,
                                              std::span<const Coord> hi)
    const {
  QueryResultStats stats;
  std::vector<std::pair<int64_t, int64_t>> leaf_slots;
  const auto result = rtree_->RangeQuery(lo, hi, nullptr, &leaf_slots);
  stats.matches = result.matches;
  stats.index_nodes_read = result.nodes_visited;

  // Data pages covering the visited leaves' rank runs (leaf ranges arrive
  // ascending and disjoint; adjacent leaves can share a boundary page, so
  // dedup against the last page appended).
  std::vector<int64_t> pages;
  for (const auto& [begin, end] : leaf_slots) {
    stats.records_scanned += end - begin;
    for (int64_t p = layout_->PageOfRank(begin);
         p <= layout_->PageOfRank(end - 1); ++p) {
      if (pages.empty() || pages.back() != p) pages.push_back(p);
    }
  }
  AccessPages(pages, &stats);
  return stats;
}

QueryResultStats QueryExecutor::KnnViaWindow(
    int64_t query_point, int k, int64_t window,
    std::vector<int64_t>* neighbors) const {
  SPECTRAL_CHECK_GE(k, 1);
  SPECTRAL_CHECK_GE(window, 1);
  QueryResultStats stats;
  const int64_t n = layout_->num_records();
  const int64_t rank = layout_->RankOfPoint(query_point);
  const int64_t lo_rank = std::max<int64_t>(0, rank - window);
  const int64_t hi_rank = std::min<int64_t>(n - 1, rank + window);

  // One probe locates the query point's leaf; the window extends from it.
  stats.index_nodes_read = rank_index_->Lookup(rank).nodes_read;
  stats.records_scanned = hi_rank - lo_rank;  // window minus the query itself

  // Candidates: the window's points ranked by (distance, point index).
  std::vector<int64_t> candidates;
  candidates.reserve(static_cast<size_t>(hi_rank - lo_rank));
  for (int64_t r = lo_rank; r <= hi_rank; ++r) {
    if (r != rank) candidates.push_back(layout_->PointOfRank(r));
  }
  const auto closer = [&](int64_t a, int64_t b) {
    const int64_t da = points_->Distance(query_point, a);
    const int64_t db = points_->Distance(query_point, b);
    return da != db ? da < db : a < b;
  };
  const int64_t have =
      std::min<int64_t>(k, static_cast<int64_t>(candidates.size()));
  std::partial_sort(candidates.begin(), candidates.begin() + have,
                    candidates.end(), closer);
  candidates.resize(static_cast<size_t>(have));
  stats.matches = have;
  if (neighbors != nullptr) *neighbors = std::move(candidates);

  const int64_t first_page = layout_->PageOfRank(lo_rank);
  const int64_t last_page = layout_->PageOfRank(hi_rank);
  std::vector<int64_t> pages;
  pages.reserve(static_cast<size_t>(last_page - first_page + 1));
  for (int64_t p = first_page; p <= last_page; ++p) pages.push_back(p);
  AccessPages(pages, &stats);
  return stats;
}

StatusOr<QueryPath> BuildQueryPath(const OrderingRequest& request,
                                   MappingService* service,
                                   const QueryPathOptions& options) {
  if (auto status = request.Validate(); !status.ok()) return status;
  if (request.points == nullptr) {
    return InvalidArgumentError(
        "BuildQueryPath requires a point-carrying request (the indexes "
        "need coordinates)");
  }
  if (request.points->empty()) {
    return InvalidArgumentError("cannot build a query path over zero points");
  }

  StatusOr<OrderingResult> ordered = [&]() -> StatusOr<OrderingResult> {
    if (service != nullptr) return service->Order(request);
    auto engine = MakeOrderingEngine(request.engine);
    if (!engine.ok()) return engine.status();
    return (*engine)->Order(request);
  }();
  if (!ordered.ok()) return ordered.status();

  OrderingResult ordering = std::move(*ordered);
  StorageLayout layout(ordering.order, options.page_size);
  StaticBPlusTree rank_index =
      StaticBPlusTree::BuildRankIndex(ordering.order, options.btree);
  PackedRTree rtree =
      PackedRTree::Build(*request.points, ordering.order, options.rtree);
  return QueryPath{request.points, std::move(ordering), std::move(layout),
                   std::move(rank_index), std::move(rtree), options};
}

}  // namespace spectral
