#include "query/executor.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace spectral {

namespace {

StaticBPlusTree BuildRankIndex(int64_t n, const BPlusTreeOptions& options) {
  std::vector<int64_t> keys(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) keys[static_cast<size_t>(i)] = i;
  return StaticBPlusTree::Build(keys, options);
}

}  // namespace

GridRangeExecutor::GridRangeExecutor(const GridSpec& grid,
                                     const LinearOrder& order,
                                     const Options& options)
    : grid_(grid),
      options_(options),
      layout_(order, options.page_size),
      index_(BuildRankIndex(grid.NumCells(), options.index)) {
  SPECTRAL_CHECK_EQ(order.size(), grid.NumCells())
      << "executor requires a full-grid order";
}

RangeExecution GridRangeExecutor::Execute(std::span<const Coord> lo,
                                          std::span<const Coord> hi) const {
  SPECTRAL_CHECK_EQ(static_cast<int>(lo.size()), grid_.dims());
  SPECTRAL_CHECK_EQ(lo.size(), hi.size());
  RangeExecution result;

  // Clamp the box to the grid.
  std::vector<Coord> clamped_lo(lo.begin(), lo.end());
  std::vector<Coord> clamped_hi(hi.begin(), hi.end());
  bool empty = false;
  for (int a = 0; a < grid_.dims(); ++a) {
    clamped_lo[static_cast<size_t>(a)] =
        std::max<Coord>(clamped_lo[static_cast<size_t>(a)], 0);
    clamped_hi[static_cast<size_t>(a)] = std::min<Coord>(
        clamped_hi[static_cast<size_t>(a)], grid_.side(a) - 1);
    if (clamped_lo[static_cast<size_t>(a)] >
        clamped_hi[static_cast<size_t>(a)]) {
      empty = true;
    }
  }
  if (empty) {
    result.index_nodes_read = index_.height();  // one wasted descent
    return result;
  }

  // Plan: the rank interval spanned by the box (one pass over its cells).
  std::vector<Coord> cell = clamped_lo;
  int64_t min_rank = layout_.num_records();
  int64_t max_rank = -1;
  int64_t volume = 0;
  while (true) {
    const int64_t rank = layout_.RankOfPoint(grid_.Flatten(cell));
    min_rank = std::min(min_rank, rank);
    max_rank = std::max(max_rank, rank);
    ++volume;
    int a = grid_.dims() - 1;
    while (a >= 0 &&
           cell[static_cast<size_t>(a)] == clamped_hi[static_cast<size_t>(a)]) {
      cell[static_cast<size_t>(a)] = clamped_lo[static_cast<size_t>(a)];
      --a;
    }
    if (a < 0) break;
    cell[static_cast<size_t>(a)] += 1;
  }

  // Execute: index probe + sequential interval scan + filter.
  const auto scan = index_.RangeScan(min_rank, max_rank);
  result.matches = volume;
  result.records_scanned = scan.records;
  result.index_nodes_read = scan.internal_read + scan.leaves_read;

  const int64_t first_page = layout_.PageOfRank(min_rank);
  const int64_t last_page = layout_.PageOfRank(max_rank);
  result.pages_read = last_page - first_page + 1;

  PageFootprint footprint;
  footprint.distinct_pages = result.pages_read;
  footprint.page_runs = 1;  // the interval is one contiguous run
  result.io_cost = IoCost(footprint, options_.io);
  return result;
}

}  // namespace spectral
