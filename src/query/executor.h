// End-to-end query execution over a mapped dataset: the paper's access
// path, wired into the modern request pipeline. An OrderingRequest (any
// registry engine) produces a LinearOrder; BuildQueryPath materializes
// that order into the physical design — a StorageLayout page assignment, a
// rank-keyed StaticBPlusTree, and a PackedRTree — and QueryExecutor runs
// range and kNN plans against it through an LruBufferPool, reporting the
// metric the paper actually argues about: data pages touched and buffer
// hits per query, not just rank correlation.
//
// Two range plans are offered, mirroring the two classic access paths:
//   * RangeViaBTree — the paper's plan: the box becomes one key interval
//     [min rank, max rank] scanned sequentially "while eliminating the
//     records that lie outside the range query". Pages read = the
//     contiguous page run covering the interval, so a locality-preserving
//     order pays for itself directly in interval length.
//   * RangeViaRTree — the packed R-tree plan: only leaves whose MBR
//     intersects the box are read, so the cost is leaf (and page) fan-out
//     under the order's packing.
// KnnViaWindow is the similarity-search plan the paper motivates: scan the
// rank window around the query point and keep the k distance-closest
// candidates.

#ifndef SPECTRAL_LPM_QUERY_EXECUTOR_H_
#define SPECTRAL_LPM_QUERY_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/mapping_service.h"
#include "core/ordering_request.h"
#include "index/bplus_tree.h"
#include "index/packed_rtree.h"
#include "space/point_set.h"
#include "storage/buffer_pool.h"
#include "storage/io_model.h"
#include "storage/layout.h"
#include "util/status.h"

namespace spectral {

/// Per-query counters of one executed plan.
///
/// Counter determinism contract: every field is a pure function of
/// (points, order, physical-design options, buffer-pool size, pool state
/// at call time, query arguments) — no wall-clock, randomness, or machine
/// state anywhere. Replaying the same query stream against a fresh pool
/// reproduces every counter byte-for-byte on any machine, which is what
/// lets bench_query_io commit page-I/O baselines and CI gate them.
struct QueryResultStats {
  /// Records matching the query (the true answer size; k for kNN).
  int64_t matches = 0;
  /// Records scanned by the plan (>= matches; the gap is the filtering
  /// overhead the mapping causes).
  int64_t records_scanned = 0;
  /// Index nodes read (B+-tree descent + leaf walk, or R-tree nodes
  /// visited). Index pages are not routed through the buffer pool: the
  /// pool models the data-page working set, the index cost is reported
  /// separately.
  int64_t index_nodes_read = 0;
  /// Distinct data pages this query needed (each accessed once through
  /// the pool).
  int64_t pages_touched = 0;
  /// Pool misses among those accesses — the actual page I/Os.
  int64_t page_io = 0;
  /// Pool hits (pages_touched == page_io + page_hits).
  int64_t page_hits = 0;
  /// Maximal runs of consecutive page ids among the touched pages
  /// (sequential-I/O segments; 1 for interval plans).
  int64_t page_runs = 0;
  /// Seek/transfer cost of the touched pages under the IoCostModel
  /// (ignores caching; the static cost of the footprint).
  double io_cost = 0.0;
};

/// Physical-design options of a query path built from one order.
struct QueryPathOptions {
  /// Records per data page of the StorageLayout.
  int64_t page_size = 32;
  BPlusTreeOptions btree;
  PackedRTreeOptions rtree;
  IoCostModel io;
};

/// Executes queries against one physical design through one buffer pool.
///
/// Borrows everything: points, layout, indexes, and pool must outlive the
/// executor (QueryPath bundles the owned pieces). The pool may be null,
/// in which case every touched page counts as one I/O (cold, poolless
/// accounting). The executor itself is stateless — all mutable state is
/// the pool's, so interleaving executors over one pool models layouts
/// competing for one working set. Counters inherit the QueryResultStats
/// determinism contract.
class QueryExecutor {
 public:
  QueryExecutor(const PointSet& points, const StorageLayout& layout,
                const StaticBPlusTree& rank_index, const PackedRTree& rtree,
                LruBufferPool* pool, const IoCostModel& io = {});

  /// The paper's plan: scan the single rank interval covering the closed
  /// box [lo, hi] through the B+-tree and filter. Bills the B+-tree
  /// descent + leaf walk and the contiguous data-page run of the
  /// interval. A box matching nothing costs one wasted descent and no
  /// data pages.
  QueryResultStats RangeViaBTree(std::span<const Coord> lo,
                                 std::span<const Coord> hi) const;

  /// The packed R-tree plan: read only the leaves whose MBR intersects
  /// the box. Bills every R-tree node visited and the data pages covering
  /// the visited leaves' rank runs.
  QueryResultStats RangeViaRTree(std::span<const Coord> lo,
                                 std::span<const Coord> hi) const;

  /// Window kNN (the paper's similarity-search application): scan the
  /// `window` ranks on each side of `query_point` and keep the k
  /// Manhattan-distance-closest candidates (ties broken by point index).
  /// Bills one B+-tree probe for the query point's rank plus the
  /// contiguous data-page run of the window. When `neighbors` is
  /// non-null it receives the selected point indices, closest first.
  QueryResultStats KnnViaWindow(int64_t query_point, int k, int64_t window,
                                std::vector<int64_t>* neighbors =
                                    nullptr) const;

 private:
  /// Accesses `pages` (ascending, distinct) through the pool and fills
  /// the page counters of `stats`.
  void AccessPages(std::span<const int64_t> pages,
                   QueryResultStats* stats) const;

  const PointSet* points_;
  const StorageLayout* layout_;
  const StaticBPlusTree* rank_index_;
  const PackedRTree* rtree_;
  LruBufferPool* pool_;  // null = poolless (every touch is an I/O)
  IoCostModel io_;
};

/// One order materialized into its physical design — the value
/// BuildQueryPath returns. Owns the point set (shared), the ordering
/// result (engine diagnostics included), the layout, and both indexes;
/// movable, and executors made from it stay valid across moves (the
/// indexes reference the shared point set, not the path).
struct QueryPath {
  std::shared_ptr<const PointSet> points;
  OrderingResult ordering;
  StorageLayout layout;
  StaticBPlusTree rank_index;
  PackedRTree rtree;
  QueryPathOptions options;

  /// An executor over this path and `pool` (borrowed, may be null).
  QueryExecutor MakeExecutor(LruBufferPool* pool) const {
    return QueryExecutor(*points, layout, rank_index, rtree, pool,
                         options.io);
  }
};

/// The end-to-end path: runs `request` through `service` (or directly
/// through the registry engine when `service` is null — byte-identical
/// orders either way), then bulk-loads the layout and both indexes from
/// the resulting order. The request must carry a point set
/// (OrderingInputKind::kPoints or kPointsWithAffinity; the indexes need
/// coordinates) held by an owning factory, so the path can share it.
/// Fails if the engine fails.
StatusOr<QueryPath> BuildQueryPath(const OrderingRequest& request,
                                   MappingService* service = nullptr,
                                   const QueryPathOptions& options = {});

}  // namespace spectral

#endif  // SPECTRAL_LPM_QUERY_EXECUTOR_H_
