// End-to-end range query execution over a mapped full-grid dataset: the
// paper's proposed access path. A d-dimensional box query becomes one key
// interval [min rank, max rank]; the executor probes a B+-tree for the
// interval, scans it sequentially, and filters out the records outside the
// box ("eliminating the records that lie outside the range query").

#ifndef SPECTRAL_LPM_QUERY_EXECUTOR_H_
#define SPECTRAL_LPM_QUERY_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <span>

#include "core/linear_order.h"
#include "index/bplus_tree.h"
#include "space/grid.h"
#include "storage/layout.h"
#include "storage/io_model.h"

namespace spectral {

/// Cost breakdown of one executed query.
struct RangeExecution {
  /// Records matching the box (the true answer size).
  int64_t matches = 0;
  /// Records scanned in the rank interval (>= matches; the gap is the
  /// filtering overhead the mapping causes).
  int64_t records_scanned = 0;
  /// B+-tree nodes read (descent + leaf walk).
  int64_t index_nodes_read = 0;
  /// Data pages read (the interval is contiguous, so this is one run).
  int64_t pages_read = 0;
  /// Run-aware cost: one seek plus sequential transfers.
  double io_cost = 0.0;
};

/// Physical-design options for GridRangeExecutor.
struct GridRangeExecutorOptions {
  int64_t page_size = 32;
  BPlusTreeOptions index;
  IoCostModel io;
};

/// Executes box queries against a full-grid dataset laid out by `order`.
/// The executor owns its layout and index; `grid` defines the record ids
/// (row-major cell ids, as produced by PointSet::FullGrid).
class GridRangeExecutor {
 public:
  using Options = GridRangeExecutorOptions;

  /// Copies the permutation out of `order`; the executor is self-contained
  /// afterwards (safe to pass a temporary order).
  GridRangeExecutor(const GridSpec& grid, const LinearOrder& order,
                    const Options& options = {});

  /// Runs the closed box [lo, hi] (clamped to the grid). A box with any
  /// lo[a] > hi[a] matches nothing and costs one index descent.
  RangeExecution Execute(std::span<const Coord> lo,
                         std::span<const Coord> hi) const;

  const StorageLayout& layout() const { return layout_; }
  const StaticBPlusTree& index() const { return index_; }

 private:
  GridSpec grid_;
  Options options_;
  StorageLayout layout_;
  StaticBPlusTree index_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_QUERY_EXECUTOR_H_
