// k-nearest-neighbor retrieval through the one-dimensional order: the
// classic application the paper motivates ("similarity search"). A locality
// preserving mapping lets a kNN query inspect only a small rank window
// around the query point; we measure the recall such a window achieves.

#ifndef SPECTRAL_LPM_QUERY_KNN_H_
#define SPECTRAL_LPM_QUERY_KNN_H_

#include <cstdint>

#include "core/linear_order.h"
#include "space/point_set.h"

namespace spectral {

/// Options for EvaluateKnnRecall.
struct KnnOptions {
  int k = 10;
  /// Candidates are the `window` ranks on each side of the query point.
  int64_t window = 32;
  /// Number of random query points.
  int64_t num_queries = 200;
  uint64_t seed = 0x6e11f3ull;
};

/// Aggregate retrieval quality.
struct KnnStats {
  /// Fraction of window candidates whose Manhattan distance is within the
  /// true k-th neighbor distance, averaged over queries.
  double mean_recall = 0.0;
  /// Mean Manhattan distance of the approximate result set divided by the
  /// mean distance of the exact result set (1.0 = perfect).
  double mean_distance_ratio = 1.0;
};

/// Compares window-based kNN against exact kNN (linear scan ground truth).
KnnStats EvaluateKnnRecall(const PointSet& points, const LinearOrder& order,
                           const KnnOptions& options = {});

}  // namespace spectral

#endif  // SPECTRAL_LPM_QUERY_KNN_H_
