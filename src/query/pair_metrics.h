// Nearest-neighbor locality metrics (paper Figure 5): for point pairs at a
// given Manhattan distance in the multi-dimensional space, how far apart do
// their ranks land in the one-dimensional order?

#ifndef SPECTRAL_LPM_QUERY_PAIR_METRICS_H_
#define SPECTRAL_LPM_QUERY_PAIR_METRICS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/linear_order.h"
#include "space/point_set.h"

namespace spectral {

/// One row per requested Manhattan distance d.
struct PairDistanceSeries {
  std::vector<int64_t> manhattan_distance;
  /// max |rank_p - rank_q| over pairs at distance d (Figure 5a's series,
  /// before normalizing to percent).
  std::vector<int64_t> max_rank_distance;
  std::vector<double> mean_rank_distance;
  std::vector<int64_t> pair_count;
};

/// Options for the pair sweeps.
struct PairMetricsOptions {
  /// 0 = exact all-pairs; otherwise sample this many random pairs per
  /// distance bucket (for large sets).
  int64_t sample_pairs = 0;
  uint64_t seed = 0x9a1f5ull;
};

/// Sweeps all (or sampled) point pairs and aggregates rank distances for
/// each Manhattan distance in `distances` (values outside the achievable
/// range yield empty buckets with pair_count 0).
PairDistanceSeries ComputePairDistanceSeries(
    const PointSet& points, const LinearOrder& order,
    std::span<const int64_t> distances, const PairMetricsOptions& options = {});

/// Figure 5b variant: only pairs that differ along a single `axis` by
/// exactly d (all other coordinates equal). Requires points.BuildIndex().
PairDistanceSeries ComputeAxisPairSeries(const PointSet& points,
                                         const LinearOrder& order, int axis,
                                         std::span<const int64_t> distances);

}  // namespace spectral

#endif  // SPECTRAL_LPM_QUERY_PAIR_METRICS_H_
