// Line-delimited wire protocol for the ordering server: parse one request
// line into a WireRequest (command + client id + an OrderingRequest for
// ORDER), and format response lines. The full grammar is documented in
// serve/ordering_server.h; this layer is pure string <-> value translation
// so it is unit-testable without a running server.

#ifndef SPECTRAL_LPM_SERVE_WIRE_H_
#define SPECTRAL_LPM_SERVE_WIRE_H_

#include <string>

#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "util/status.h"

namespace spectral {

enum class WireCommand {
  kOrder,
  kStats,
  kHealth,
  kSnapshot,
  kQuit,
};

/// One parsed request line. `request` is populated for kOrder (with an
/// owning point-set payload, so the WireRequest is a self-contained value);
/// `snapshot_path` for kSnapshot.
struct WireRequest {
  WireCommand command = WireCommand::kQuit;
  /// Client-chosen token echoed on the response line ("-" when absent).
  std::string id = "-";
  /// Per-request deadline in milliseconds; < 0 means "server default".
  double deadline_ms = -1.0;
  std::string snapshot_path;
  OrderingRequest request;
};

/// Parses one request line. Returns InvalidArgument on malformed input
/// (unknown command, bad counts, unparsable numbers); the caller answers
/// with FormatErrorResponse and keeps serving.
StatusOr<WireRequest> ParseWireRequest(const std::string& line);

/// "ORDERED <id> <n> <rank of point 0> ... <rank of point n-1>".
std::string FormatOrderedResponse(const std::string& id,
                                  const OrderingResult& result);

/// "ERROR <id> <CODE> <message>" (CODE is StatusCodeName, e.g.
/// DEADLINE_EXCEEDED).
std::string FormatErrorResponse(const std::string& id, const Status& status);

}  // namespace spectral

#endif  // SPECTRAL_LPM_SERVE_WIRE_H_
