#include "serve/wire.h"

#include <cstdlib>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "space/grid.h"
#include "space/point_set.h"
#include "util/string_util.h"

namespace spectral {

namespace {

bool ParseDouble(const std::string& token, double* out) {
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end != token.c_str() && *end == '\0';
}

bool ParseInt(const std::string& token, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(token.c_str(), &end, 10);
  return end != token.c_str() && *end == '\0';
}

// "key=value" option tokens between the engine name and the payload tag.
// Unknown keys are an error: a typo silently ignored would serve the wrong
// order.
Status ApplyOrderOption(const std::string& token, WireRequest* out) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos) {
    return InvalidArgumentError("bad option token '" + token +
                                "' (want key=value)");
  }
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  if (key == "deadline") {
    if (!ParseDouble(value, &out->deadline_ms)) {
      return InvalidArgumentError("bad deadline '" + value + "'");
    }
    return OkStatus();
  }
  if (key == "connectivity") {
    if (value == "orthogonal") {
      out->request.options.spectral.graph.connectivity =
          GridConnectivity::kOrthogonal;
    } else if (value == "moore") {
      out->request.options.spectral.graph.connectivity =
          GridConnectivity::kMoore;
    } else {
      return InvalidArgumentError("bad connectivity '" + value + "'");
    }
    return OkStatus();
  }
  if (key == "radius") {
    int64_t radius = 0;
    if (!ParseInt(value, &radius) || radius < 1) {
      return InvalidArgumentError("bad radius '" + value + "'");
    }
    out->request.options.spectral.graph.radius = static_cast<int>(radius);
    return OkStatus();
  }
  if (key == "shards") {
    int64_t shards = 0;
    if (!ParseInt(value, &shards) || shards < 1) {
      return InvalidArgumentError("bad shards '" + value + "'");
    }
    out->request.options.sharded.num_shards = static_cast<int>(shards);
    return OkStatus();
  }
  return InvalidArgumentError("unknown option '" + key + "'");
}

// "GRID <s0>x<s1>[x...]": the payload is the full grid's point set.
Status ParseGridPayload(std::istringstream& in, WireRequest* out) {
  std::string spec;
  if (!(in >> spec)) return InvalidArgumentError("GRID needs <s0>x<s1>...");
  std::vector<Coord> sides;
  for (const std::string& part : StrSplit(spec, 'x')) {
    int64_t side = 0;
    if (!ParseInt(part, &side) || side < 1) {
      return InvalidArgumentError("bad grid side '" + part + "'");
    }
    sides.push_back(static_cast<Coord>(side));
  }
  if (sides.empty()) return InvalidArgumentError("empty grid spec");
  std::string extra;
  if (in >> extra) {
    return InvalidArgumentError("unexpected token '" + extra +
                                "' after grid spec");
  }
  out->request.points = std::make_shared<const PointSet>(
      PointSet::FullGrid(GridSpec(std::move(sides))));
  return OkStatus();
}

// "POINTS <dims> <n> <c...>": n*dims integer coordinates.
Status ParsePointsPayload(std::istringstream& in, WireRequest* out) {
  int64_t dims = 0;
  int64_t n = 0;
  if (!(in >> dims >> n) || dims < 1 || n < 0) {
    return InvalidArgumentError("POINTS needs <dims> <n> <coords...>");
  }
  PointSet points(static_cast<int>(dims));
  std::vector<Coord> p(static_cast<size_t>(dims));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t a = 0; a < dims; ++a) {
      int64_t c = 0;
      if (!(in >> c)) {
        return InvalidArgumentError("POINTS payload truncated (want " +
                                    FormatInt(n * dims) + " coordinates)");
      }
      p[static_cast<size_t>(a)] = static_cast<Coord>(c);
    }
    points.Add(p);
  }
  std::string extra;
  if (in >> extra) {
    return InvalidArgumentError("unexpected token '" + extra +
                                "' after point list");
  }
  out->request.points = std::make_shared<const PointSet>(std::move(points));
  return OkStatus();
}

}  // namespace

StatusOr<WireRequest> ParseWireRequest(const std::string& line) {
  std::istringstream in(line);
  std::string command;
  if (!(in >> command)) return InvalidArgumentError("empty request line");

  WireRequest out;
  if (command == "QUIT") {
    out.command = WireCommand::kQuit;
    return out;
  }
  if (!(in >> out.id)) {
    return InvalidArgumentError(command + " needs a request id");
  }
  if (command == "STATS") {
    out.command = WireCommand::kStats;
    return out;
  }
  if (command == "HEALTH") {
    out.command = WireCommand::kHealth;
    return out;
  }
  if (command == "SNAPSHOT") {
    out.command = WireCommand::kSnapshot;
    if (!(in >> out.snapshot_path)) {
      return InvalidArgumentError("SNAPSHOT needs a file path");
    }
    return out;
  }
  if (command != "ORDER") {
    return InvalidArgumentError("unknown command '" + command + "'");
  }

  out.command = WireCommand::kOrder;
  std::string engine;
  if (!(in >> engine)) return InvalidArgumentError("ORDER needs an engine");
  out.request.engine = engine;
  out.request.input = OrderingInputKind::kPoints;

  // Options until the payload tag.
  std::string token;
  while (in >> token) {
    if (token == "GRID") {
      if (Status s = ParseGridPayload(in, &out); !s.ok()) return s;
      return out;
    }
    if (token == "POINTS") {
      if (Status s = ParsePointsPayload(in, &out); !s.ok()) return s;
      return out;
    }
    if (Status s = ApplyOrderOption(token, &out); !s.ok()) return s;
  }
  return InvalidArgumentError("ORDER needs a GRID or POINTS payload");
}

std::string FormatOrderedResponse(const std::string& id,
                                  const OrderingResult& result) {
  std::ostringstream out;
  out << "ORDERED " << id << ' ' << result.order.size();
  for (int64_t i = 0; i < result.order.size(); ++i) {
    out << ' ' << result.order.RankOf(i);
  }
  return out.str();
}

std::string FormatErrorResponse(const std::string& id, const Status& status) {
  return "ERROR " + id + " " + StatusCodeName(status.code()) + " " +
         status.message();
}

}  // namespace spectral
