#include "serve/ordering_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <istream>
#include <ostream>
#include <utility>

#include "core/serialization.h"
#include "serve/fd_stream.h"
#include "serve/wire.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace spectral {

namespace {

using SteadyClock = std::chrono::steady_clock;

double ToMs(SteadyClock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

SteadyClock::duration FromMs(double ms) {
  return std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

// Latency histograms bin log10(ms) so sub-millisecond cache hits and
// multi-second cold solves share one axis at ~2% resolution.
constexpr double kLogLo = -5.0;
constexpr double kLogHi = 5.0;
constexpr int kLogBins = 1000;

double QuantileMs(const Histogram& h, double p) {
  if (h.total_count() == 0) return 0.0;
  return std::pow(10.0, h.Quantile(p));
}

// The server-level fault registry reaches the MappingService ladder too,
// unless the caller wired a different one into the service options.
MappingServiceOptions WithServerFaults(MappingServiceOptions service,
                                       FaultInjector* faults) {
  if (service.faults == nullptr) service.faults = faults;
  return service;
}

}  // namespace

OrderingServer::OrderingServer(OrderingServerOptions options)
    : options_(std::move(options)),
      service_(WithServerFaults(options_.service, options_.faults)),
      latency_all_(kLogLo, kLogHi, kLogBins),
      latency_cold_(kLogLo, kLogHi, kLogBins),
      latency_warm_(kLogLo, kLogHi, kLogBins) {
  batcher_ = std::thread([this] { BatcherLoop(); });
  snapshot_writer_ = std::thread([this] { SnapshotLoop(); });
}

OrderingServer::~OrderingServer() { Shutdown(); }

std::future<StatusOr<OrderingResult>> OrderingServer::Submit(
    OrderingRequest request, double deadline_ms) {
  std::promise<StatusOr<OrderingResult>> promise;
  std::future<StatusOr<OrderingResult>> future = promise.get_future();
  if (deadline_ms < 0.0) deadline_ms = options_.default_deadline_ms;
  const SteadyClock::time_point now = SteadyClock::now();

  size_t depth = 0;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (shutdown_) {
      lock.unlock();
      promise.set_value(FailedPreconditionError("server is shut down"));
      return future;
    }
    if (queue_.size() >= options_.max_queue) {
      lock.unlock();
      {
        std::lock_guard<std::mutex> slock(stats_mu_);
        ++shed_overload_;
      }
      promise.set_value(ResourceExhaustedError(
          "serving queue full (max_queue=" +
          FormatInt(static_cast<int64_t>(options_.max_queue)) + ")"));
      return future;
    }
    Pending pending;
    pending.request = std::move(request);
    pending.promise = std::move(promise);
    pending.enqueue = now;
    if (deadline_ms > 0.0) {
      pending.has_deadline = true;
      pending.deadline = now + FromMs(deadline_ms);
    }
    queue_.push_back(std::move(pending));
    depth = queue_.size();
  }
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++accepted_;
    max_queue_depth_ = std::max(max_queue_depth_, depth);
  }
  queue_cv_.notify_all();
  return future;
}

void OrderingServer::Pause() {
  std::lock_guard<std::mutex> lock(queue_mu_);
  paused_ = true;
}

void OrderingServer::Resume() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

void OrderingServer::BatcherLoop() {
  const SteadyClock::duration window =
      FromMs(std::max(0.0, options_.window_ms));
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_cv_.wait(lock,
                   [&] { return shutdown_ || (!queue_.empty() && !paused_); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    if (!shutdown_) {
      // Aggregation window, anchored at the oldest pending request; a full
      // batch, a pause, or shutdown cuts it short. During shutdown the
      // remaining queue drains without windowing.
      const SteadyClock::time_point wake = queue_.front().enqueue + window;
      while (!shutdown_ && !paused_ &&
             queue_.size() < options_.max_batch &&
             SteadyClock::now() < wake) {
        queue_cv_.wait_until(lock, wake);
      }
      if (paused_ && !shutdown_) continue;
    }
    std::vector<Pending> batch;
    while (!queue_.empty() && batch.size() < options_.max_batch) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    DispatchBatch(std::move(batch));
    lock.lock();
  }
}

void OrderingServer::DispatchBatch(std::vector<Pending> batch) {
  const SteadyClock::time_point dispatch_time = SteadyClock::now();
  std::vector<Pending> live;
  live.reserve(batch.size());
  int64_t expired = 0;
  for (Pending& pending : batch) {
    if (pending.has_deadline && dispatch_time > pending.deadline) {
      pending.promise.set_value(DeadlineExceededError(
          "deadline expired after " +
          FormatDouble(ToMs(dispatch_time - pending.enqueue), 2) +
          " ms in queue"));
      ++expired;
      continue;
    }
    live.push_back(std::move(pending));
  }
  if (expired > 0) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    expired_deadline_ += expired;
  }
  if (live.empty()) return;

  // Failure-domain boundary: an injected dispatch fault fails the whole
  // batch with a typed error instead of solving. Every promise is still
  // fulfilled — overload, expiry, and faults all answer, never hang.
  if (FaultFires(options_.faults, "serve.dispatch")) {
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      served_error_ += static_cast<int64_t>(live.size());
    }
    for (Pending& pending : live) {
      pending.promise.set_value(InternalError(
          "injected serve.dispatch fault: batch of " +
          FormatInt(static_cast<int64_t>(live.size())) + " dropped"));
    }
    return;
  }

  std::vector<OrderingRequest> requests;
  requests.reserve(live.size());
  for (const Pending& pending : live) requests.push_back(pending.request);
  std::vector<StatusOr<OrderingResult>> results =
      service_.OrderBatch(requests);

  const SteadyClock::time_point done = SteadyClock::now();
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    for (size_t i = 0; i < live.size(); ++i) {
      if (results[i].ok()) {
        const bool warm =
            results[i]->detail.find(" | cache=hit") != std::string::npos;
        RecordLatencyLocked(ToMs(done - live[i].enqueue), warm);
        ++served_ok_;
      } else {
        ++served_error_;
      }
    }
  }
  for (size_t i = 0; i < live.size(); ++i) {
    live[i].promise.set_value(std::move(results[i]));
  }
}

void OrderingServer::RecordLatencyLocked(double ms, bool warm) {
  const double log_ms = std::log10(std::max(ms, 1e-5));
  latency_all_.Add(log_ms);
  if (warm) {
    latency_warm_.Add(log_ms);
  } else {
    latency_cold_.Add(log_ms);
  }
}

OrderingServerStats OrderingServer::stats() const {
  OrderingServerStats s;
  s.service = service_.stats();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    s.queue_depth = queue_.size();
  }
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    s.snapshots_saved = snapshots_saved_;
    s.snapshot_failures = snapshot_failures_;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  s.accepted = accepted_;
  s.shed_overload = shed_overload_;
  s.expired_deadline = expired_deadline_;
  s.served_ok = served_ok_;
  s.served_error = served_error_;
  s.max_queue_depth = max_queue_depth_;
  s.p50_ms = QuantileMs(latency_all_, 0.5);
  s.p99_ms = QuantileMs(latency_all_, 0.99);
  s.cold_p50_ms = QuantileMs(latency_cold_, 0.5);
  s.cold_p99_ms = QuantileMs(latency_cold_, 0.99);
  s.warm_p50_ms = QuantileMs(latency_warm_, 0.5);
  s.warm_p99_ms = QuantileMs(latency_warm_, 0.99);
  return s;
}

void OrderingServer::ResetStats() {
  service_.ResetStats();
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    snapshots_saved_ = 0;
    snapshot_failures_ = 0;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  accepted_ = 0;
  shed_overload_ = 0;
  expired_deadline_ = 0;
  served_ok_ = 0;
  served_error_ = 0;
  max_queue_depth_ = 0;
  latency_all_ = Histogram(kLogLo, kLogHi, kLogBins);
  latency_cold_ = Histogram(kLogLo, kLogHi, kLogBins);
  latency_warm_ = Histogram(kLogLo, kLogHi, kLogBins);
}

std::string OrderingServer::StatsLine(const std::string& id) const {
  const OrderingServerStats s = stats();
  std::string line = "STATS " + id;
  line += " requests=" + FormatInt(s.service.requests);
  line += " solves=" + FormatInt(s.service.solves);
  line += " cache_hits=" + FormatInt(s.service.cache_hits);
  line += " cache_misses=" + FormatInt(s.service.cache_misses);
  line += " cache_evictions=" + FormatInt(s.service.cache_evictions);
  line += " failures=" + FormatInt(s.service.failures);
  line += " batches=" + FormatInt(s.service.batches);
  line += " coalesced=" + FormatInt(s.service.coalesced_requests);
  line += " batch_latency_max_ms=" +
          FormatDouble(s.service.batch_latency_max_ms, 3);
  line += " retried_solves=" + FormatInt(s.service.retried_solves);
  line += " degraded_orders=" + FormatInt(s.service.degraded_orders);
  line += " accepted=" + FormatInt(s.accepted);
  line += " shed_overload=" + FormatInt(s.shed_overload);
  line += " expired_deadline=" + FormatInt(s.expired_deadline);
  line += " served_ok=" + FormatInt(s.served_ok);
  line += " served_error=" + FormatInt(s.served_error);
  line += " snapshots_saved=" + FormatInt(s.snapshots_saved);
  line += " snapshot_failures=" + FormatInt(s.snapshot_failures);
  line += " queue_depth=" + FormatInt(static_cast<int64_t>(s.queue_depth));
  line += " max_queue_depth=" +
          FormatInt(static_cast<int64_t>(s.max_queue_depth));
  line += " p50_ms=" + FormatDouble(s.p50_ms, 4);
  line += " p99_ms=" + FormatDouble(s.p99_ms, 4);
  line += " cold_p50_ms=" + FormatDouble(s.cold_p50_ms, 4);
  line += " cold_p99_ms=" + FormatDouble(s.cold_p99_ms, 4);
  line += " warm_p50_ms=" + FormatDouble(s.warm_p50_ms, 4);
  line += " warm_p99_ms=" + FormatDouble(s.warm_p99_ms, 4);
  return line;
}

std::string OrderingServer::HealthLine(const std::string& id) const {
  const OrderingServerStats s = stats();
  std::string line = "HEALTH " + id;
  line += " accepted=" + FormatInt(s.accepted);
  line += " shed_overload=" + FormatInt(s.shed_overload);
  line += " expired_deadline=" + FormatInt(s.expired_deadline);
  line += " served_ok=" + FormatInt(s.served_ok);
  line += " served_error=" + FormatInt(s.served_error);
  line += " retried_solves=" + FormatInt(s.service.retried_solves);
  line += " degraded_orders=" + FormatInt(s.service.degraded_orders);
  line += " cache_entries=" +
          FormatInt(static_cast<int64_t>(service_.CacheSize()));
  line += " snapshots_saved=" + FormatInt(s.snapshots_saved);
  line += " snapshot_failures=" + FormatInt(s.snapshot_failures);
  return line;
}

Status OrderingServer::SaveSnapshot(const std::string& path) const {
  return SaveOrderCacheSnapshotToFile(service_.ExportCache(), path,
                                      options_.faults);
}

StatusOr<int64_t> OrderingServer::LoadSnapshot(const std::string& path) {
  auto entries = LoadOrderCacheSnapshotFromFile(path);
  if (!entries.ok()) return entries.status();
  return service_.ImportCache(*entries);
}

StatusOr<int64_t> OrderingServer::RotateSnapshot(const std::string& path) {
  if (path.empty()) {
    return InvalidArgumentError("snapshot rotation needs a file path");
  }
  SnapshotJob job;
  job.path = path;
  job.entries = service_.ExportCache();
  const auto count = static_cast<int64_t>(job.entries.size());
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    if (snap_shutdown_) {
      return FailedPreconditionError("snapshot writer is shut down");
    }
    snap_queue_.push_back(std::move(job));
  }
  snap_cv_.notify_all();
  return count;
}

void OrderingServer::FlushSnapshots() {
  std::unique_lock<std::mutex> lock(snap_mu_);
  snap_cv_.wait(lock, [&] { return snap_queue_.empty() && !snap_inflight_; });
}

void OrderingServer::SnapshotLoop() {
  std::unique_lock<std::mutex> lock(snap_mu_);
  for (;;) {
    snap_cv_.wait(lock, [&] { return snap_shutdown_ || !snap_queue_.empty(); });
    if (snap_queue_.empty()) return;  // shutdown with nothing left to drain
    SnapshotJob job = std::move(snap_queue_.front());
    snap_queue_.pop_front();
    snap_inflight_ = true;
    lock.unlock();
    const Status s =
        SaveOrderCacheSnapshotToFile(job.entries, job.path, options_.faults);
    lock.lock();
    snap_inflight_ = false;
    if (s.ok()) {
      ++snapshots_saved_;
    } else {
      ++snapshot_failures_;
    }
    snap_cv_.notify_all();
  }
}

void OrderingServer::ServeStream(std::istream& in, std::ostream& out) {
  // Replies are queued in submission order; a writer thread drains them so
  // reading (and therefore window coalescing of pipelined ORDER lines)
  // never blocks on an in-flight solve. STATS and SNAPSHOT replies are
  // rendered when the writer *dequeues* them — i.e. after every earlier
  // ORDER on this stream has completed — so their contents are consistent
  // with the reply position the client sees them at.
  struct Reply {
    enum Kind { kText, kStats, kHealth, kSnapshot, kOrder } kind = kText;
    std::string text;  // kText payload; kSnapshot path
    std::string id;
    std::future<StatusOr<OrderingResult>> result;  // kOrder
  };
  std::deque<Reply> replies;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;

  std::thread writer([&] {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv.wait(lock, [&] { return done || !replies.empty(); });
      if (replies.empty()) return;
      Reply reply = std::move(replies.front());
      replies.pop_front();
      lock.unlock();
      std::string text;
      switch (reply.kind) {
        case Reply::kText:
          text = std::move(reply.text);
          break;
        case Reply::kStats:
          text = StatsLine(reply.id);
          break;
        case Reply::kHealth:
          // HEALTH is a barrier: queued snapshot rotations land first, so
          // its counters are deterministic for a scripted session.
          FlushSnapshots();
          text = HealthLine(reply.id);
          break;
        case Reply::kSnapshot: {
          // Queued on the background writer; the reply reports how many
          // entries the rotation will persist, not that the write landed
          // (HEALTH or FlushSnapshots observe completion).
          const StatusOr<int64_t> queued = RotateSnapshot(reply.text);
          text = queued.ok() ? "SAVED " + reply.id + " " +
                                   FormatInt(*queued) + " " + reply.text
                             : FormatErrorResponse(reply.id, queued.status());
          break;
        }
        case Reply::kOrder: {
          StatusOr<OrderingResult> result = reply.result.get();
          text = result.ok() ? FormatOrderedResponse(reply.id, *result)
                             : FormatErrorResponse(reply.id, result.status());
          break;
        }
      }
      out << text << '\n';
      out.flush();
      lock.lock();
    }
  });

  auto push = [&](Reply reply) {
    {
      std::lock_guard<std::mutex> lock(mu);
      replies.push_back(std::move(reply));
    }
    cv.notify_all();
  };
  auto push_immediate = [&](std::string text) {
    Reply reply;
    reply.kind = Reply::kText;
    reply.text = std::move(text);
    push(std::move(reply));
  };

  std::string line;
  bool quit = false;
  while (!quit && std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto parsed = ParseWireRequest(line);
    if (!parsed.ok()) {
      push_immediate(FormatErrorResponse("-", parsed.status()));
      continue;
    }
    switch (parsed->command) {
      case WireCommand::kQuit:
        quit = true;
        break;
      case WireCommand::kStats: {
        Reply reply;
        reply.kind = Reply::kStats;
        reply.id = parsed->id;
        push(std::move(reply));
        break;
      }
      case WireCommand::kHealth: {
        Reply reply;
        reply.kind = Reply::kHealth;
        reply.id = parsed->id;
        push(std::move(reply));
        break;
      }
      case WireCommand::kSnapshot: {
        Reply reply;
        reply.kind = Reply::kSnapshot;
        reply.id = parsed->id;
        reply.text = parsed->snapshot_path;
        push(std::move(reply));
        break;
      }
      case WireCommand::kOrder: {
        Reply reply;
        reply.kind = Reply::kOrder;
        reply.id = parsed->id;
        reply.result = Submit(std::move(parsed->request), parsed->deadline_ms);
        push(std::move(reply));
        break;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_all();
  writer.join();
  if (quit) {
    out << "BYE\n";
    out.flush();
  }
}

StatusOr<int> OrderingServer::StartTcp(int port) {
  std::lock_guard<std::mutex> lock(tcp_mu_);
  if (listen_fd_ >= 0) {
    return FailedPreconditionError("TCP listener already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return InternalError("socket() failed");
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return InternalError("bind() to port " + FormatInt(port) + " failed");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return InternalError("listen() failed");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    ::close(fd);
    return InternalError("getsockname() failed");
  }
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return static_cast<int>(ntohs(addr.sin_port));
}

void OrderingServer::AcceptLoop() {
  for (;;) {
    int listen_fd;
    {
      std::lock_guard<std::mutex> lock(tcp_mu_);
      listen_fd = listen_fd_;
    }
    if (listen_fd < 0) return;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or fatal accept error): stop serving
    }
    std::lock_guard<std::mutex> lock(tcp_mu_);
    const size_t slot = connection_fds_.size();
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd, slot] {
      FdStreambuf in_buf(fd);
      FdStreambuf out_buf(fd);
      std::istream conn_in(&in_buf);
      std::ostream conn_out(&out_buf);
      ServeStream(conn_in, conn_out);
      int to_close = -1;
      {
        std::lock_guard<std::mutex> l(tcp_mu_);
        to_close = connection_fds_[slot];
        connection_fds_[slot] = -1;
      }
      if (to_close >= 0) ::close(to_close);
    });
  }
}

void OrderingServer::Shutdown() {
  // 1. Stop intake and drain the request queue: the batcher serves
  //    everything already accepted, then exits.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutdown_ = true;
    paused_ = false;
  }
  queue_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();

  // 2. Unblock and join the TCP side: shutting the listener down pops the
  //    accept loop; shutting each live connection fd down pops its reader.
  {
    std::lock_guard<std::mutex> lock(tcp_mu_);
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(tcp_mu_);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (int fd : connection_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
    to_join.swap(connection_threads_);
  }
  for (std::thread& t : to_join) t.join();
  {
    std::lock_guard<std::mutex> lock(tcp_mu_);
    connection_fds_.clear();
  }

  // 3. Last, the snapshot writer: after the batcher and every connection
  //    are gone nothing can enqueue a rotation, so the writer drains the
  //    remaining queue and exits.
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    snap_shutdown_ = true;
  }
  snap_cv_.notify_all();
  if (snapshot_writer_.joinable()) snapshot_writer_.join();
}

}  // namespace spectral
