#include "serve/fd_stream.h"

#include <unistd.h>

#include <cerrno>

namespace spectral {

FdStreambuf::FdStreambuf(int fd) : fd_(fd) {
  setg(in_buffer_.data(), in_buffer_.data(), in_buffer_.data());
  setp(out_buffer_.data(), out_buffer_.data() + out_buffer_.size());
}

FdStreambuf::int_type FdStreambuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  ssize_t n;
  do {
    n = ::read(fd_, in_buffer_.data(), in_buffer_.size());
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return traits_type::eof();
  setg(in_buffer_.data(), in_buffer_.data(),
       in_buffer_.data() + static_cast<size_t>(n));
  return traits_type::to_int_type(*gptr());
}

bool FdStreambuf::FlushPutArea() {
  const char* data = pbase();
  size_t remaining = static_cast<size_t>(pptr() - pbase());
  while (remaining > 0) {
    const ssize_t n = ::write(fd_, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    remaining -= static_cast<size_t>(n);
  }
  setp(out_buffer_.data(), out_buffer_.data() + out_buffer_.size());
  return true;
}

FdStreambuf::int_type FdStreambuf::overflow(int_type c) {
  if (!FlushPutArea()) return traits_type::eof();
  if (!traits_type::eq_int_type(c, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(c);
    pbump(1);
  }
  return traits_type::not_eof(c);
}

int FdStreambuf::sync() { return FlushPutArea() ? 0 : -1; }

}  // namespace spectral
