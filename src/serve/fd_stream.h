// FdStreambuf: a minimal bidirectional std::streambuf over a POSIX file
// descriptor, so the server's stream-based serving loop (ServeStream) can
// run unchanged over a TCP connection or a pipe. Buffered both ways; sync()
// flushes the put area with a full write loop. The fd is borrowed, not
// owned.

#ifndef SPECTRAL_LPM_SERVE_FD_STREAM_H_
#define SPECTRAL_LPM_SERVE_FD_STREAM_H_

#include <array>
#include <streambuf>

namespace spectral {

class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd);

 protected:
  int_type underflow() override;
  int_type overflow(int_type c) override;
  int sync() override;

 private:
  bool FlushPutArea();

  int fd_;
  std::array<char, 4096> in_buffer_;
  std::array<char, 4096> out_buffer_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_SERVE_FD_STREAM_H_
