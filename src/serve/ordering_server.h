// OrderingServer: the long-lived serving tier over the MappingService
// facade — ordering-as-a-service. A process wraps one OrderingServer
// (tools/spectral_serve.cc) and clients speak a line-delimited protocol
// over TCP or a stdin/stdout pipe; in-process consumers (tests, benches)
// submit OrderingRequests directly and get futures back. Either way every
// request flows through the same path:
//
//   Submit -> admission control -> bounded queue -> aggregation window ->
//   one MappingService::OrderBatch -> completion
//
// * Aggregation window: the batcher thread collects requests that arrive
//   within `window_ms` of the oldest pending one (or until `max_batch`)
//   and serves them as ONE OrderBatch call, so concurrently-arriving
//   duplicates are coalesced into a single solve by fingerprint dedup and
//   distinct requests share the solver fan-out. Orders are byte-identical
//   to direct serial engine calls at any window size (the MappingService
//   determinism contract; test-enforced).
// * Admission control + deadlines: when the queue holds `max_queue`
//   requests, new submissions are shed immediately with RESOURCE_EXHAUSTED;
//   a request whose deadline passes before its batch is dispatched
//   completes with DEADLINE_EXCEEDED. Responses always arrive — overload
//   and expiry produce a clean Status, never a hang.
// * Cache persistence: SaveSnapshot/LoadSnapshot move the fingerprint ->
//   order LRU through core/serialization.h, so a restarted server keeps
//   its warm set and performs zero eigensolves on previously-served
//   fingerprints. A corrupt/truncated/wrong-version snapshot is
//   quarantined to "<path>.corrupt" and the server simply starts cold.
//   RotateSnapshot queues the save on a dedicated background writer
//   thread (the snapshot wire command and SIGHUP rotation use it), so a
//   multi-megabyte fsync never stalls batching or reply writing; saves
//   are crash-safe (tmp file + fsync + atomic rename — see
//   core/serialization.h).
// * Fault injection: OrderingServerOptions::faults (a util/fault.h
//   registry, active only in SPECTRAL_FAULTS builds) arms the
//   "serve.dispatch" site here (a dispatched batch fails every live
//   request with a typed INTERNAL error instead of solving), and is
//   handed down to the MappingService ("solver.converge") and the
//   snapshot writer ("snapshot.write"/"snapshot.rename"). Every injected
//   failure surfaces as a well-formed error reply — never a hang.
// * Stats: stats() / the STATS command surface MappingServiceStats plus
//   serving counters (accepted/shed/expired, batches, coalesced requests,
//   queue depth) and p50/p99 latency — overall and split cold (engine
//   solve) vs. warm (cache hit) — from log-scale histograms.
// * Graceful drain: Shutdown() (and the destructor) stop intake, serve
//   everything already queued, then join; in-flight futures all complete.
//
// Wire protocol (one request per line; tokens space-separated; responses
// are one line each, in submission order per connection):
//
//   ORDER <id> <engine> [deadline=<ms>] [connectivity=<orthogonal|moore>]
//         [radius=<n>] [shards=<k>] GRID <s0>x<s1>[x...]
//   ORDER <id> <engine> [options...] POINTS <dims> <n> <c0> <c1> ...
//   STATS <id>
//   HEALTH <id>
//   SNAPSHOT <id> <path>
//   QUIT
//
//   -> ORDERED <id> <n> <rank of point 0> ... <rank of point n-1>
//   -> ERROR <id> <CODE> <message>        (CODE = StatusCodeName)
//   -> STATS <id> key=value ...
//   -> HEALTH <id> key=value ...
//   -> SAVED <id> <entries> <path>
//   -> BYE                                (answer to QUIT)
//
// <id> is any client-chosen token, echoed verbatim. STATS, HEALTH, and
// SNAPSHOT are rendered at their position in the reply stream, so they
// reflect every earlier ORDER on the connection. SNAPSHOT queues the save
// on the background writer and replies immediately with the entry count;
// HEALTH waits for queued snapshot saves to land first, then reports only
// deterministic counters (no latency percentiles), so scripted fault runs
// can compare HEALTH output byte-for-byte across seeds. Operational knobs
// (OrderingServerOptions): window_ms (aggregation window), max_batch
// (drain cap per batch), max_queue (admission bound), default_deadline_ms
// (0 = none), snapshot_path (used by the spectral_serve tool to restore on
// start and persist on exit), and the embedded MappingServiceOptions
// (worker parallelism + LRU cache capacity).

#ifndef SPECTRAL_LPM_SERVE_ORDERING_SERVER_H_
#define SPECTRAL_LPM_SERVE_ORDERING_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/mapping_service.h"
#include "core/ordering_engine.h"
#include "core/ordering_request.h"
#include "stats/histogram.h"
#include "util/status.h"

namespace spectral {

/// Operational knobs; see the header comment for semantics.
struct OrderingServerOptions {
  /// Worker parallelism and LRU order-cache capacity of the underlying
  /// MappingService.
  MappingServiceOptions service;
  /// Aggregation window: requests arriving within this many milliseconds
  /// of the oldest pending request are served as one OrderBatch. 0 still
  /// coalesces whatever is queued when the batcher wakes.
  double window_ms = 1.0;
  /// Max requests dispatched as one batch.
  size_t max_batch = 64;
  /// Admission bound: submissions beyond this many queued requests are
  /// shed with RESOURCE_EXHAUSTED.
  size_t max_queue = 1024;
  /// Deadline applied when a request does not carry its own; <= 0 = none.
  double default_deadline_ms = 0.0;
  /// Snapshot file the spectral_serve tool restores from on start and
  /// saves to on exit; the server itself only acts on explicit
  /// SaveSnapshot/LoadSnapshot/RotateSnapshot calls (and the SNAPSHOT
  /// wire command / SIGHUP rotation in the tool).
  std::string snapshot_path;
  /// Optional fault-injection registry (not owned; must outlive the
  /// server). Arms "serve.dispatch" here and is forwarded to the
  /// MappingService (unless service.faults is already set) and the
  /// snapshot writer. Runtime-only; a no-op unless built with
  /// SPECTRAL_FAULTS.
  FaultInjector* faults = nullptr;
};

/// Point-in-time serving statistics (all counters since construction or
/// the last ResetStats()).
struct OrderingServerStats {
  MappingServiceStats service;
  int64_t accepted = 0;
  int64_t shed_overload = 0;
  int64_t expired_deadline = 0;
  int64_t served_ok = 0;
  int64_t served_error = 0;
  /// Background snapshot rotations that landed on disk / failed (an
  /// injected or real write error; the previous snapshot generation at
  /// the target path survives either way).
  int64_t snapshots_saved = 0;
  int64_t snapshot_failures = 0;
  size_t queue_depth = 0;
  size_t max_queue_depth = 0;
  /// Submit-to-completion latency percentiles in milliseconds (log-scale
  /// histogram approximation, ~2% resolution). "cold" = served by an
  /// engine solve, "warm" = served from the order cache.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cold_p50_ms = 0.0;
  double cold_p99_ms = 0.0;
  double warm_p50_ms = 0.0;
  double warm_p99_ms = 0.0;
};

class OrderingServer {
 public:
  explicit OrderingServer(OrderingServerOptions options = {});
  /// Graceful drain: equivalent to Shutdown().
  ~OrderingServer();
  OrderingServer(const OrderingServer&) = delete;
  OrderingServer& operator=(const OrderingServer&) = delete;

  /// Enqueues one request. The future always becomes ready: with the
  /// result, or with RESOURCE_EXHAUSTED (queue full), DEADLINE_EXCEEDED
  /// (expired before dispatch), or FAILED_PRECONDITION (server shut down).
  /// deadline_ms < 0 applies options().default_deadline_ms.
  std::future<StatusOr<OrderingResult>> Submit(OrderingRequest request,
                                               double deadline_ms = -1.0);

  /// Pauses/resumes batch dispatch (admission continues). Pausing lets
  /// tests and drain tooling compose a deterministic batch: everything
  /// submitted while paused is dispatched as one batch on Resume (up to
  /// max_batch). Shutdown overrides a pause.
  void Pause();
  void Resume();

  OrderingServerStats stats() const;
  /// Zeroes serving counters and latency histograms (and the underlying
  /// MappingService counters). Cache contents are retained.
  void ResetStats();
  /// The "STATS <id> key=value ..." response line.
  std::string StatsLine(const std::string& id) const;
  /// The "HEALTH <id> key=value ..." response line: deterministic
  /// counters only (accepted/shed/expired/served, retries, degraded
  /// orders, cache entries, snapshot rotations) — no latency fields, so
  /// identical request+fault schedules produce identical HEALTH lines.
  std::string HealthLine(const std::string& id) const;

  /// Writes the current order cache to `path` synchronously (ExportCache
  /// -> crash-safe SaveOrderCacheSnapshotToFile). Used for the final save
  /// on process exit; live rotation goes through RotateSnapshot.
  Status SaveSnapshot(const std::string& path) const;
  /// Restores the order cache from `path`; returns the number of entries
  /// imported. On any parse error the damaged file is quarantined to
  /// "<path>.corrupt", the cache is left untouched (the server starts
  /// cold), and the error is returned.
  StatusOr<int64_t> LoadSnapshot(const std::string& path);
  /// Snapshots the cache to `path` off the serving path: clones the cache
  /// now, queues the write on the background snapshot writer, and returns
  /// the number of entries the snapshot will contain. The write itself is
  /// crash-safe; failures bump stats().snapshot_failures and leave any
  /// previous snapshot at `path` intact. Returns FAILED_PRECONDITION
  /// after Shutdown().
  StatusOr<int64_t> RotateSnapshot(const std::string& path);
  /// Blocks until every queued RotateSnapshot write has completed.
  void FlushSnapshots();

  /// Serves the line protocol over a stream pair until QUIT or EOF.
  /// Responses are written in submission order; ORDER lines are submitted
  /// as they are read, so a client that pipelines requests gets them
  /// coalesced by the aggregation window. Blocking; returns when the
  /// stream ends.
  void ServeStream(std::istream& in, std::ostream& out);

  /// Listens on 127.0.0.1:`port` (0 = ephemeral) and serves each accepted
  /// connection on its own thread via ServeStream. Returns the bound port.
  StatusOr<int> StartTcp(int port);

  /// Stops intake, drains the queue (all pending futures complete), stops
  /// the TCP listener and connection threads, joins the batcher, then
  /// drains and joins the snapshot writer (queued rotations still land).
  /// Idempotent.
  void Shutdown();

  const OrderingServerOptions& options() const { return options_; }
  MappingService& service() { return service_; }

 private:
  struct Pending {
    OrderingRequest request;
    std::promise<StatusOr<OrderingResult>> promise;
    std::chrono::steady_clock::time_point enqueue;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
  };

  struct SnapshotJob {
    std::string path;
    std::vector<OrderCacheEntry> entries;
  };

  void BatcherLoop();
  void DispatchBatch(std::vector<Pending> batch);
  void AcceptLoop();
  void SnapshotLoop();
  /// Caller holds stats_mu_.
  void RecordLatencyLocked(double ms, bool warm);

  const OrderingServerOptions options_;
  MappingService service_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool paused_ = false;
  bool shutdown_ = false;

  mutable std::mutex stats_mu_;
  int64_t accepted_ = 0;
  int64_t shed_overload_ = 0;
  int64_t expired_deadline_ = 0;
  int64_t served_ok_ = 0;
  int64_t served_error_ = 0;
  size_t max_queue_depth_ = 0;
  // log10(latency ms) histograms; see RecordLatencyLocked.
  Histogram latency_all_;
  Histogram latency_cold_;
  Histogram latency_warm_;

  std::thread batcher_;

  // Background snapshot writer: RotateSnapshot enqueues, SnapshotLoop
  // drains. Counters live under snap_mu_ (stats() reads them there).
  mutable std::mutex snap_mu_;
  std::condition_variable snap_cv_;
  std::deque<SnapshotJob> snap_queue_;
  bool snap_inflight_ = false;
  bool snap_shutdown_ = false;
  int64_t snapshots_saved_ = 0;
  int64_t snapshot_failures_ = 0;
  std::thread snapshot_writer_;

  std::mutex tcp_mu_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_SERVE_ORDERING_SERVER_H_
