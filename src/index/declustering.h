// Declustering: stripe records over M independent disks so range queries
// parallelize. With a locality-preserving order, round-robin striping of
// the 1-d order spreads any contiguous range evenly — another application
// the paper names for Spectral LPM.

#ifndef SPECTRAL_LPM_INDEX_DECLUSTERING_H_
#define SPECTRAL_LPM_INDEX_DECLUSTERING_H_

#include <cstdint>

#include "core/linear_order.h"
#include "query/range_query.h"
#include "space/grid.h"

namespace spectral {

/// Round-robin striping by rank: record with rank r lives on disk r % M.
///
/// Determinism contract: disk assignment is pure modular arithmetic on the
/// rank, so DeclusteringStats computed from it are byte-identical across
/// runs and machines and safe to commit as bench baselines.
class RoundRobinDecluster {
 public:
  explicit RoundRobinDecluster(int num_disks);

  int num_disks() const { return num_disks_; }
  int DiskOfRank(int64_t rank) const;

 private:
  int num_disks_;
};

/// Load-balance quality over a population of grid range queries.
struct DeclusteringStats {
  /// Mean over queries of (max per-disk hits) / ceil(result / M); 1.0 means
  /// every query is perfectly parallelized.
  double mean_balance_ratio = 0.0;
  double max_balance_ratio = 0.0;
  int64_t num_queries = 0;
};

/// Evaluates round-robin declustering of `order` on every placement of the
/// query window (full-grid point sets, as in EvaluateRangeQueries).
DeclusteringStats EvaluateDeclustering(const GridSpec& grid,
                                       const LinearOrder& order,
                                       const RangeQueryShape& shape,
                                       int num_disks);

}  // namespace spectral

#endif  // SPECTRAL_LPM_INDEX_DECLUSTERING_H_
