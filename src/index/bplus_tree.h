// Bulk-loaded (static) B+-tree over one-dimensional keys: the index a
// database actually builds on the output of a locality-preserving mapping.
// The paper's premise is that a multi-dimensional range query turns into a
// single key interval [min rank, max rank] scanned sequentially "while
// eliminating the records that lie outside the range query"; this tree
// measures exactly that cost. BuildRankIndex bulk-loads the tree directly
// from a LinearOrder produced by any OrderingEngine registry engine — the
// rank-keyed index of the end-to-end query path (query/executor.h).

#ifndef SPECTRAL_LPM_INDEX_BPLUS_TREE_H_
#define SPECTRAL_LPM_INDEX_BPLUS_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/linear_order.h"

namespace spectral {

/// Node sizes for the packed B+-tree levels.
struct BPlusTreeOptions {
  int leaf_capacity = 32;
  int fanout = 16;
};

/// Immutable, packed B+-tree. Keys are int64 and must be strictly
/// ascending at build time (ranks always are).
///
/// Counter determinism contract: LookupResult and ScanResult fields are
/// pure functions of (keys, options, probe arguments) — the descent and
/// leaf walk are fixed traversals with no randomness or wall-clock input,
/// so repeated probes return byte-identical counters on any machine.
class StaticBPlusTree {
 public:
  /// Node sizes for the packed levels (alias kept close to the class).
  using BuildOptions = BPlusTreeOptions;

  /// Bulk-loads from strictly ascending keys; requires at least one key.
  static StaticBPlusTree Build(std::span<const int64_t> sorted_keys,
                               const BuildOptions& options = {});

  /// Bulk-loads the rank index of `order`: keys are the ranks 0..n-1 (one
  /// per record). Tree shape is identical for every order of the same
  /// size; what an order changes is which key interval a query scans.
  static StaticBPlusTree BuildRankIndex(const LinearOrder& order,
                                        const BuildOptions& options = {});

  /// Point lookup cost accounting.
  struct LookupResult {
    bool found = false;
    /// Nodes read root -> leaf (the I/O of one probe).
    int64_t nodes_read = 0;
  };
  LookupResult Lookup(int64_t key) const;

  /// Inclusive range scan [lo, hi].
  struct ScanResult {
    /// Keys found inside the interval.
    int64_t records = 0;
    int64_t leaves_read = 0;
    /// Internal nodes read on the initial descent.
    int64_t internal_read = 0;
  };
  ScanResult RangeScan(int64_t lo, int64_t hi) const;

  /// Levels including the leaf level (1 for a single-leaf tree).
  int64_t height() const { return static_cast<int64_t>(levels_.size()); }
  int64_t num_leaves() const;
  /// All nodes across levels.
  int64_t num_nodes() const;
  int64_t num_keys() const { return static_cast<int64_t>(keys_.size()); }

 private:
  StaticBPlusTree() = default;

  struct Node {
    int64_t begin = 0;  // child (or key) range [begin, end)
    int64_t end = 0;
    int64_t min_key = 0;  // smallest key in the subtree
  };

  std::vector<int64_t> keys_;
  std::vector<std::vector<Node>> levels_;  // levels_[0] = leaves
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_INDEX_BPLUS_TREE_H_
