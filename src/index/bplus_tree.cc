#include "index/bplus_tree.h"

#include <algorithm>

#include "util/check.h"

namespace spectral {

StaticBPlusTree StaticBPlusTree::Build(std::span<const int64_t> sorted_keys,
                                       const BuildOptions& options) {
  SPECTRAL_CHECK(!sorted_keys.empty());
  SPECTRAL_CHECK_GE(options.leaf_capacity, 1);
  SPECTRAL_CHECK_GE(options.fanout, 2);
  for (size_t i = 1; i < sorted_keys.size(); ++i) {
    SPECTRAL_CHECK_LT(sorted_keys[i - 1], sorted_keys[i])
        << "keys must be strictly ascending";
  }

  StaticBPlusTree tree;
  tree.keys_.assign(sorted_keys.begin(), sorted_keys.end());

  // Leaf level.
  std::vector<Node> leaves;
  const int64_t n = static_cast<int64_t>(tree.keys_.size());
  for (int64_t begin = 0; begin < n; begin += options.leaf_capacity) {
    Node node;
    node.begin = begin;
    node.end = std::min<int64_t>(begin + options.leaf_capacity, n);
    node.min_key = tree.keys_[static_cast<size_t>(begin)];
    leaves.push_back(node);
  }
  tree.levels_.push_back(std::move(leaves));

  // Internal levels.
  while (tree.levels_.back().size() > 1) {
    const auto& below = tree.levels_.back();
    std::vector<Node> level;
    const int64_t m = static_cast<int64_t>(below.size());
    for (int64_t begin = 0; begin < m; begin += options.fanout) {
      Node node;
      node.begin = begin;
      node.end = std::min<int64_t>(begin + options.fanout, m);
      node.min_key = below[static_cast<size_t>(begin)].min_key;
      level.push_back(node);
    }
    tree.levels_.push_back(std::move(level));
  }
  return tree;
}

StaticBPlusTree StaticBPlusTree::BuildRankIndex(const LinearOrder& order,
                                                const BuildOptions& options) {
  SPECTRAL_CHECK_GT(order.size(), 0);
  std::vector<int64_t> keys(static_cast<size_t>(order.size()));
  for (int64_t i = 0; i < order.size(); ++i) keys[static_cast<size_t>(i)] = i;
  return Build(keys, options);
}

int64_t StaticBPlusTree::num_leaves() const {
  return static_cast<int64_t>(levels_[0].size());
}

int64_t StaticBPlusTree::num_nodes() const {
  int64_t total = 0;
  for (const auto& level : levels_) total += static_cast<int64_t>(level.size());
  return total;
}

StaticBPlusTree::LookupResult StaticBPlusTree::Lookup(int64_t key) const {
  LookupResult result;
  // Descend from the root.
  int64_t node_index = 0;
  for (size_t level = levels_.size(); level-- > 0;) {
    result.nodes_read += 1;
    const Node& node = levels_[level][static_cast<size_t>(node_index)];
    if (level == 0) {
      const auto begin = keys_.begin() + node.begin;
      const auto end = keys_.begin() + node.end;
      result.found = std::binary_search(begin, end, key);
      return result;
    }
    // Last child with min_key <= key.
    const auto& below = levels_[level - 1];
    int64_t chosen = node.begin;
    for (int64_t c = node.begin; c < node.end; ++c) {
      if (below[static_cast<size_t>(c)].min_key <= key) {
        chosen = c;
      } else {
        break;
      }
    }
    node_index = chosen;
  }
  return result;  // unreachable: loop always returns at level 0
}

StaticBPlusTree::ScanResult StaticBPlusTree::RangeScan(int64_t lo,
                                                       int64_t hi) const {
  ScanResult result;
  if (lo > hi) return result;

  // Descend to the leaf that may contain `lo`.
  int64_t node_index = 0;
  for (size_t level = levels_.size(); level-- > 1;) {
    result.internal_read += 1;
    const Node& node = levels_[level][static_cast<size_t>(node_index)];
    const auto& below = levels_[level - 1];
    int64_t chosen = node.begin;
    for (int64_t c = node.begin; c < node.end; ++c) {
      if (below[static_cast<size_t>(c)].min_key <= lo) {
        chosen = c;
      } else {
        break;
      }
    }
    node_index = chosen;
  }

  // Walk right across the leaf level.
  const auto& leaves = levels_[0];
  for (int64_t leaf = node_index;
       leaf < static_cast<int64_t>(leaves.size()); ++leaf) {
    const Node& node = leaves[static_cast<size_t>(leaf)];
    if (node.min_key > hi) break;
    result.leaves_read += 1;
    const auto begin = keys_.begin() + node.begin;
    const auto end = keys_.begin() + node.end;
    const auto first = std::lower_bound(begin, end, lo);
    const auto last = std::upper_bound(begin, end, hi);
    result.records += last - first;
  }
  return result;
}

}  // namespace spectral
