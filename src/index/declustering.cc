#include "index/declustering.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace spectral {

RoundRobinDecluster::RoundRobinDecluster(int num_disks)
    : num_disks_(num_disks) {
  SPECTRAL_CHECK_GE(num_disks, 1);
}

int RoundRobinDecluster::DiskOfRank(int64_t rank) const {
  SPECTRAL_DCHECK_GE(rank, 0);
  return static_cast<int>(rank % num_disks_);
}

DeclusteringStats EvaluateDeclustering(const GridSpec& grid,
                                       const LinearOrder& order,
                                       const RangeQueryShape& shape,
                                       int num_disks) {
  SPECTRAL_CHECK_EQ(order.size(), grid.NumCells());
  SPECTRAL_CHECK_EQ(static_cast<int>(shape.extents.size()), grid.dims());
  const RoundRobinDecluster decluster(num_disks);
  const int dims = grid.dims();

  DeclusteringStats stats;
  double ratio_sum = 0.0;

  std::vector<Coord> origin(static_cast<size_t>(dims), 0);
  std::vector<Coord> offset(static_cast<size_t>(dims), 0);
  std::vector<Coord> cell(static_cast<size_t>(dims));
  std::vector<Coord> origin_limits(static_cast<size_t>(dims));
  for (int a = 0; a < dims; ++a) {
    SPECTRAL_CHECK_LE(shape.extents[static_cast<size_t>(a)], grid.side(a));
    origin_limits[static_cast<size_t>(a)] = static_cast<Coord>(
        grid.side(a) - shape.extents[static_cast<size_t>(a)] + 1);
  }

  auto next_counter = [](std::vector<Coord>& counter,
                         std::span<const Coord> limits) {
    for (size_t a = counter.size(); a-- > 0;) {
      if (counter[a] + 1 < limits[a]) {
        counter[a] += 1;
        std::fill(counter.begin() + static_cast<int64_t>(a) + 1,
                  counter.end(), 0);
        return true;
      }
    }
    return false;
  };

  std::vector<int64_t> per_disk(static_cast<size_t>(num_disks));
  do {
    std::fill(per_disk.begin(), per_disk.end(), 0);
    int64_t total = 0;
    std::fill(offset.begin(), offset.end(), 0);
    do {
      for (int a = 0; a < dims; ++a) {
        cell[static_cast<size_t>(a)] = static_cast<Coord>(
            origin[static_cast<size_t>(a)] + offset[static_cast<size_t>(a)]);
      }
      const int64_t rank = order.RankOf(grid.Flatten(cell));
      per_disk[static_cast<size_t>(decluster.DiskOfRank(rank))] += 1;
      total += 1;
    } while (next_counter(offset, shape.extents));

    const int64_t max_load = *std::max_element(per_disk.begin(), per_disk.end());
    const int64_t optimal = (total + num_disks - 1) / num_disks;
    const double ratio =
        static_cast<double>(max_load) / static_cast<double>(optimal);
    ratio_sum += ratio;
    stats.max_balance_ratio = std::max(stats.max_balance_ratio, ratio);
    stats.num_queries += 1;
  } while (next_counter(origin, origin_limits));

  stats.mean_balance_ratio =
      stats.num_queries > 0 ? ratio_sum / static_cast<double>(stats.num_queries)
                            : 0.0;
  return stats;
}

}  // namespace spectral
