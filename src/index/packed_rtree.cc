#include "index/packed_rtree.h"

#include <algorithm>

#include "util/check.h"

namespace spectral {

Mbr Mbr::Empty(int dims) {
  Mbr mbr;
  mbr.lo.assign(static_cast<size_t>(dims), 1);
  mbr.hi.assign(static_cast<size_t>(dims), 0);  // lo > hi marks empty
  return mbr;
}

bool Mbr::IsEmpty() const { return !lo.empty() && lo[0] > hi[0]; }

void Mbr::Expand(std::span<const Coord> p) {
  SPECTRAL_DCHECK_EQ(p.size(), lo.size());
  if (IsEmpty()) {
    lo.assign(p.begin(), p.end());
    hi.assign(p.begin(), p.end());
    return;
  }
  for (size_t a = 0; a < lo.size(); ++a) {
    lo[a] = std::min(lo[a], p[a]);
    hi[a] = std::max(hi[a], p[a]);
  }
}

void Mbr::Expand(const Mbr& other) {
  if (other.IsEmpty()) return;
  if (IsEmpty()) {
    *this = other;
    return;
  }
  for (size_t a = 0; a < lo.size(); ++a) {
    lo[a] = std::min(lo[a], other.lo[a]);
    hi[a] = std::max(hi[a], other.hi[a]);
  }
}

bool Mbr::Intersects(std::span<const Coord> query_lo,
                     std::span<const Coord> query_hi) const {
  SPECTRAL_DCHECK_EQ(query_lo.size(), lo.size());
  if (IsEmpty()) return false;
  for (size_t a = 0; a < lo.size(); ++a) {
    if (query_hi[a] < lo[a] || query_lo[a] > hi[a]) return false;
  }
  return true;
}

bool Mbr::Contains(std::span<const Coord> p) const {
  if (IsEmpty()) return false;
  for (size_t a = 0; a < lo.size(); ++a) {
    if (p[a] < lo[a] || p[a] > hi[a]) return false;
  }
  return true;
}

double Mbr::Volume() const {
  if (IsEmpty()) return 0.0;
  double v = 1.0;
  for (size_t a = 0; a < lo.size(); ++a) {
    v *= static_cast<double>(hi[a] - lo[a] + 1);
  }
  return v;
}

double Mbr::Margin() const {
  if (IsEmpty()) return 0.0;
  double m = 0.0;
  for (size_t a = 0; a < lo.size(); ++a) {
    m += static_cast<double>(hi[a] - lo[a] + 1);
  }
  return m;
}

double Mbr::OverlapVolume(const Mbr& other) const {
  if (IsEmpty() || other.IsEmpty()) return 0.0;
  double v = 1.0;
  for (size_t a = 0; a < lo.size(); ++a) {
    const Coord l = std::max(lo[a], other.lo[a]);
    const Coord h = std::min(hi[a], other.hi[a]);
    if (l > h) return 0.0;
    v *= static_cast<double>(h - l + 1);
  }
  return v;
}

PackedRTree PackedRTree::Build(const PointSet& points,
                               const LinearOrder& order,
                               const PackedRTreeOptions& options) {
  const int leaf_capacity = options.leaf_capacity;
  const int fanout = options.fanout;
  SPECTRAL_CHECK_EQ(points.size(), order.size());
  SPECTRAL_CHECK_GE(leaf_capacity, 1);
  SPECTRAL_CHECK_GE(fanout, 2);
  SPECTRAL_CHECK_GT(points.size(), 0);

  PackedRTree tree;
  tree.points_ = &points;
  tree.options_ = options;
  const int64_t n = points.size();
  tree.point_of_slot_.resize(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    tree.point_of_slot_[static_cast<size_t>(r)] = order.PointAtRank(r);
  }

  // Leaf level.
  std::vector<Node> leaves;
  for (int64_t begin = 0; begin < n; begin += leaf_capacity) {
    Node node;
    node.begin = begin;
    node.end = std::min<int64_t>(begin + leaf_capacity, n);
    node.mbr = Mbr::Empty(points.dims());
    for (int64_t s = node.begin; s < node.end; ++s) {
      node.mbr.Expand(points[tree.point_of_slot_[static_cast<size_t>(s)]]);
    }
    leaves.push_back(std::move(node));
  }
  tree.levels_.push_back(std::move(leaves));

  // Internal levels until a single root.
  while (tree.levels_.back().size() > 1) {
    const auto& below = tree.levels_.back();
    std::vector<Node> level;
    const int64_t m = static_cast<int64_t>(below.size());
    for (int64_t begin = 0; begin < m; begin += fanout) {
      Node node;
      node.begin = begin;
      node.end = std::min<int64_t>(begin + fanout, m);
      node.mbr = Mbr::Empty(points.dims());
      for (int64_t c = node.begin; c < node.end; ++c) {
        node.mbr.Expand(below[static_cast<size_t>(c)].mbr);
      }
      level.push_back(std::move(node));
    }
    tree.levels_.push_back(std::move(level));
  }
  return tree;
}

PackedRTree::QueryResult PackedRTree::RangeQuery(
    std::span<const Coord> query_lo, std::span<const Coord> query_hi,
    std::vector<int64_t>* matching_ranks,
    std::vector<std::pair<int64_t, int64_t>>* visited_leaf_slots) const {
  SPECTRAL_CHECK(points_ != nullptr);
  SPECTRAL_CHECK_EQ(static_cast<int>(query_lo.size()), points_->dims());
  SPECTRAL_CHECK_EQ(query_lo.size(), query_hi.size());

  QueryResult result;
  // Iterative DFS from the root level downwards. Children are pushed in
  // reverse so the stack pops them slot-ascending, which keeps the
  // matching_ranks / visited_leaf_slots outputs sorted.
  struct Frame {
    size_t level;
    int64_t node;
  };
  std::vector<Frame> stack;
  const size_t root_level = levels_.size() - 1;
  for (size_t i = levels_[root_level].size(); i-- > 0;) {
    stack.push_back({root_level, static_cast<int64_t>(i)});
  }
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& node = levels_[frame.level][static_cast<size_t>(frame.node)];
    if (!node.mbr.Intersects(query_lo, query_hi)) continue;
    result.nodes_visited += 1;
    if (frame.level == 0) {
      result.leaves_visited += 1;
      if (visited_leaf_slots != nullptr) {
        visited_leaf_slots->emplace_back(node.begin, node.end);
      }
      for (int64_t s = node.begin; s < node.end; ++s) {
        const auto p = (*points_)[point_of_slot_[static_cast<size_t>(s)]];
        bool inside = true;
        for (size_t a = 0; a < query_lo.size(); ++a) {
          if (p[a] < query_lo[a] || p[a] > query_hi[a]) {
            inside = false;
            break;
          }
        }
        if (inside) {
          result.matches += 1;
          if (matching_ranks != nullptr) matching_ranks->push_back(s);
        }
      }
    } else {
      for (int64_t c = node.end; c-- > node.begin;) {
        stack.push_back({frame.level - 1, c});
      }
    }
  }
  return result;
}

PackedRTree::Stats PackedRTree::ComputeStats() const {
  Stats stats;
  const auto& leaves = levels_[0];
  stats.num_leaves = static_cast<int64_t>(leaves.size());
  stats.height = static_cast<int64_t>(levels_.size());
  for (const Node& leaf : leaves) {
    stats.total_leaf_volume += leaf.mbr.Volume();
    stats.total_leaf_margin += leaf.mbr.Margin();
  }
  for (size_t i = 0; i < leaves.size(); ++i) {
    for (size_t j = i + 1; j < leaves.size(); ++j) {
      stats.leaf_overlap_volume += leaves[i].mbr.OverlapVolume(leaves[j].mbr);
    }
  }
  return stats;
}

}  // namespace spectral
