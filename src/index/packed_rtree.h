// Bulk-loaded (packed) R-tree: leaves are consecutive runs of a
// LinearOrder produced by any OrderingEngine registry engine (the order a
// request pipeline hands back — see core/ordering_request.h), so packing
// quality is a direct function of the order's locality. This is one of the
// applications the paper claims Spectral LPM improves ("R-tree packing"),
// and the spatial index of the end-to-end query path in query/executor.h:
// slot s of the tree holds the point at rank s, which is exactly the
// record StorageLayout stores on page s / page_size.

#ifndef SPECTRAL_LPM_INDEX_PACKED_RTREE_H_
#define SPECTRAL_LPM_INDEX_PACKED_RTREE_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/linear_order.h"
#include "space/point_set.h"

namespace spectral {

/// Axis-aligned minimum bounding rectangle over integer coordinates.
struct Mbr {
  std::vector<Coord> lo;
  std::vector<Coord> hi;

  /// Degenerate MBR ready for Expand.
  static Mbr Empty(int dims);

  bool IsEmpty() const;
  void Expand(std::span<const Coord> p);
  void Expand(const Mbr& other);
  bool Intersects(std::span<const Coord> query_lo,
                  std::span<const Coord> query_hi) const;
  bool Contains(std::span<const Coord> p) const;
  /// Product of (hi - lo + 1); cell-count volume.
  double Volume() const;
  /// Sum of (hi - lo + 1); the margin (perimeter-style) measure.
  double Margin() const;
  /// Cell-count volume of the intersection with `other` (0 when disjoint).
  double OverlapVolume(const Mbr& other) const;
};

/// Node sizes for the packed R-tree levels.
struct PackedRTreeOptions {
  int leaf_capacity = 32;
  int fanout = 8;
};

/// Packed R-tree built from a point set in rank order.
///
/// Counter determinism contract: every QueryResult field is a pure
/// function of (points, order, options, query box) — node visitation is a
/// fixed DFS over the packed levels with no randomness, hashing, or
/// wall-clock input, so repeated queries return byte-identical counters on
/// any machine.
class PackedRTree {
 public:
  /// Packs points sorted by `order` into leaves of
  /// `options.leaf_capacity` entries and internal levels of
  /// `options.fanout` children. Slot s (leaf entry position) is exactly
  /// rank s of `order`.
  static PackedRTree Build(const PointSet& points, const LinearOrder& order,
                           const PackedRTreeOptions& options = {});

  /// Query execution counters (deterministic; see class comment).
  struct QueryResult {
    int64_t matches = 0;
    /// Internal + leaf nodes whose MBR intersected the query (each visit is
    /// one page read in the classic I/O model).
    int64_t nodes_visited = 0;
    int64_t leaves_visited = 0;
  };

  /// Counts points inside the closed box [query_lo, query_hi].
  ///
  /// When `matching_ranks` is non-null, the slot ids (== ranks in the
  /// build order) of every matching point are appended, ascending. When
  /// `visited_leaf_slots` is non-null, the [begin, end) slot range of
  /// every visited leaf is appended, ascending — the record runs a pooled
  /// executor must fetch from storage (query/executor.h).
  QueryResult RangeQuery(
      std::span<const Coord> query_lo, std::span<const Coord> query_hi,
      std::vector<int64_t>* matching_ranks = nullptr,
      std::vector<std::pair<int64_t, int64_t>>* visited_leaf_slots =
          nullptr) const;

  /// Static packing-quality measures of the leaf level (deterministic).
  struct Stats {
    int64_t num_leaves = 0;
    int64_t height = 0;  // levels including the leaf level
    double total_leaf_volume = 0.0;
    double total_leaf_margin = 0.0;
    /// Sum of pairwise overlap volumes between leaves (0 = perfectly
    /// disjoint packing).
    double leaf_overlap_volume = 0.0;
  };
  Stats ComputeStats() const;

  int64_t num_points() const {
    return static_cast<int64_t>(point_of_slot_.size());
  }
  const PackedRTreeOptions& options() const { return options_; }

 private:
  PackedRTree() = default;

  // Level 0 = leaves; each level is a vector of nodes with [begin, end)
  // child ranges into the level below (or into point slots for leaves).
  struct Node {
    int64_t begin = 0;
    int64_t end = 0;
    Mbr mbr;
  };

  const PointSet* points_ = nullptr;
  PackedRTreeOptions options_;
  std::vector<int64_t> point_of_slot_;      // rank -> point index
  std::vector<std::vector<Node>> levels_;   // levels_[0] = leaves
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_INDEX_PACKED_RTREE_H_
