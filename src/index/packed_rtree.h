// Bulk-loaded (packed) R-tree: leaves are consecutive runs of the linear
// order, so packing quality is a direct function of the order's locality —
// one of the applications the paper claims Spectral LPM improves ("R-tree
// packing").

#ifndef SPECTRAL_LPM_INDEX_PACKED_RTREE_H_
#define SPECTRAL_LPM_INDEX_PACKED_RTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/linear_order.h"
#include "space/point_set.h"

namespace spectral {

/// Axis-aligned minimum bounding rectangle over integer coordinates.
struct Mbr {
  std::vector<Coord> lo;
  std::vector<Coord> hi;

  /// Degenerate MBR ready for Expand.
  static Mbr Empty(int dims);

  bool IsEmpty() const;
  void Expand(std::span<const Coord> p);
  void Expand(const Mbr& other);
  bool Intersects(std::span<const Coord> query_lo,
                  std::span<const Coord> query_hi) const;
  bool Contains(std::span<const Coord> p) const;
  /// Product of (hi - lo + 1); cell-count volume.
  double Volume() const;
  /// Sum of (hi - lo + 1); the margin (perimeter-style) measure.
  double Margin() const;
  /// Cell-count volume of the intersection with `other` (0 when disjoint).
  double OverlapVolume(const Mbr& other) const;
};

/// Packed R-tree built from a point set in rank order.
class PackedRTree {
 public:
  /// Packs points sorted by `order` into leaves of `leaf_capacity` entries
  /// and internal levels of `fanout` children.
  static PackedRTree Build(const PointSet& points, const LinearOrder& order,
                           int leaf_capacity, int fanout);

  /// Query execution counters.
  struct QueryResult {
    int64_t matches = 0;
    /// Internal + leaf nodes whose MBR intersected the query (each visit is
    /// one page read in the classic I/O model).
    int64_t nodes_visited = 0;
    int64_t leaves_visited = 0;
  };

  /// Counts points inside the closed box [query_lo, query_hi].
  QueryResult RangeQuery(std::span<const Coord> query_lo,
                         std::span<const Coord> query_hi) const;

  /// Static packing-quality measures of the leaf level.
  struct Stats {
    int64_t num_leaves = 0;
    int64_t height = 0;  // levels including the leaf level
    double total_leaf_volume = 0.0;
    double total_leaf_margin = 0.0;
    /// Sum of pairwise overlap volumes between leaves (0 = perfectly
    /// disjoint packing).
    double leaf_overlap_volume = 0.0;
  };
  Stats ComputeStats() const;

  int64_t num_points() const { return static_cast<int64_t>(point_of_slot_.size()); }

 private:
  PackedRTree() = default;

  // Level 0 = leaves; each level is a vector of nodes with [begin, end)
  // child ranges into the level below (or into point slots for leaves).
  struct Node {
    int64_t begin = 0;
    int64_t end = 0;
    Mbr mbr;
  };

  const PointSet* points_ = nullptr;
  std::vector<int64_t> point_of_slot_;      // rank -> point index
  std::vector<std::vector<Node>> levels_;   // levels_[0] = leaves
};

}  // namespace spectral

#endif  // SPECTRAL_LPM_INDEX_PACKED_RTREE_H_
